//! Pluggable relation storage.
//!
//! The engine stores every relation through the [`RelationStorage`] trait,
//! mirroring how §4.3 of the paper swaps the data structure underneath the
//! Soufflé engine. Tuples are padded to a fixed [`MAX_ARITY`]-word buffer
//! (padding zeros never affect equality or lexicographic prefix order).
//!
//! Operations take a per-thread *context* created by
//! [`RelationStorage::make_ctx`]; the specialized B-tree keeps its operation
//! hints there (the paper's thread-local hints), other backends use a unit
//! context. Contexts are type-erased (`dyn Any`) so the evaluator stays
//! storage-agnostic.

use crate::ast::MAX_ARITY;
use baselines::gbtree::GBTreeSet;
use baselines::global_lock::GlobalLock;
use baselines::hashset::HashSet as OaHashSet;
use baselines::rbtree::RbTreeSet;
use baselines::splitorder::SplitOrderedSet;
use specbtree::{BTreeHints, BTreeSet, HintStats};
use std::any::Any;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::Arc;

/// A tuple padded to the maximum arity.
pub type TupleBuf = [u64; MAX_ARITY];

/// Pads a tuple slice to a [`TupleBuf`].
pub fn pad(t: &[u64]) -> TupleBuf {
    let mut out = [0u64; MAX_ARITY];
    out[..t.len()].copy_from_slice(t);
    out
}

/// A per-thread operation context (hints for the specialized B-tree, unit
/// for everything else).
pub type StorageCtx = Box<dyn Any + Send>;

/// One unit of parallel scan work handed out by
/// [`RelationStorage::partition`] and consumed by
/// [`RelationStorage::scan_chunk`].
#[derive(Clone, Debug)]
pub struct StorageChunk {
    /// The shard that produced this chunk — `0` for every unsharded
    /// backend. [`RelationStorage::partition`] emits chunks grouped by
    /// this id, and the work-stealing scheduler uses it to drain a
    /// worker's home shard before stealing across shard boundaries.
    pub shard: usize,
    /// What the chunk actually covers.
    pub span: ChunkSpan,
}

/// The scan interval of one [`StorageChunk`].
#[derive(Clone, Debug)]
pub enum ChunkSpan {
    /// A half-open tuple interval `[lower, upper)` walked directly in an
    /// ordered backend (`None` bounds are unbounded). Produced natively by
    /// the specialized B-tree from its separator keys — no tuples are
    /// copied to build it.
    Range {
        /// Inclusive lower bound.
        lower: Option<TupleBuf>,
        /// Exclusive upper bound.
        upper: Option<TupleBuf>,
    },
    /// Fallback for backends without ordered range cursors: an index slice
    /// of a snapshot materialized once per `partition` call. The snapshot
    /// is shared (`Arc`), so workers scan it without re-entering the
    /// backend — important for globally locked backends whose callbacks
    /// would otherwise run under the lock.
    Materialized {
        /// The snapshot shared by all chunks of one `partition` call.
        tuples: Arc<Vec<TupleBuf>>,
        /// First index of this chunk's slice.
        start: usize,
        /// One past the last index of this chunk's slice.
        end: usize,
    },
}

/// Thread-safe tuple storage for one relation.
pub trait RelationStorage: Send + Sync {
    /// Creates a fresh per-thread context.
    fn make_ctx(&self) -> StorageCtx;

    /// Inserts `t`, returning `true` if newly inserted. Safe to call
    /// concurrently from many threads (each with its own context).
    fn insert(&self, t: &TupleBuf, ctx: &mut StorageCtx) -> bool;

    /// Removes `t`, returning `true` if it was present (this call deleted
    /// it). Same concurrency contract as [`insert`](Self::insert): safe
    /// from many threads, each with its own context; racing removers of
    /// one tuple see exactly one `true`.
    fn remove(&self, t: &TupleBuf, ctx: &mut StorageCtx) -> bool;

    /// Membership test. Safe under concurrency for tuples not being
    /// concurrently inserted.
    fn contains(&self, t: &TupleBuf, ctx: &mut StorageCtx) -> bool;

    /// Calls `f` for every tuple whose leading words equal `prefix`.
    /// Quiescent phases only (the two-phase Datalog contract).
    fn scan_prefix(&self, prefix: &[u64], ctx: &mut StorageCtx, f: &mut dyn FnMut(&TupleBuf));

    /// Splits the tuples matching `prefix` into at most `n` chunks for
    /// parallel scanning via [`scan_chunk`](Self::scan_chunk). Returns an
    /// empty vector when nothing matches. Quiescent phases only.
    ///
    /// Ordered backends split the key space itself (no tuples copied);
    /// this default materializes the prefix scan once into a shared
    /// snapshot and slices it — the pre-refactor behavior, kept for
    /// backends without ordered cursors.
    fn partition(&self, n: usize, prefix: &[u64]) -> Vec<StorageChunk> {
        let mut all = Vec::new();
        let mut ctx = self.make_ctx();
        self.scan_prefix(prefix, &mut ctx, &mut |t| all.push(*t));
        if all.is_empty() {
            return Vec::new();
        }
        let n = n.clamp(1, all.len());
        let tuples = Arc::new(all);
        let per = tuples.len().div_ceil(n);
        (0..n)
            .map(|i| StorageChunk {
                shard: 0,
                span: ChunkSpan::Materialized {
                    tuples: Arc::clone(&tuples),
                    start: i * per,
                    end: ((i + 1) * per).min(tuples.len()),
                },
            })
            .filter(|c| matches!(c.span, ChunkSpan::Materialized { start, end, .. } if start < end))
            .collect()
    }

    /// Calls `f` for every tuple in `chunk`, in backend order. Quiescent
    /// phases only. `ctx` keeps per-thread state (B-tree hints) warm
    /// across the many chunks one worker claims.
    fn scan_chunk(
        &self,
        chunk: &StorageChunk,
        _ctx: &mut StorageCtx,
        f: &mut dyn FnMut(&TupleBuf),
    ) {
        match &chunk.span {
            ChunkSpan::Materialized { tuples, start, end } => {
                for t in &tuples[*start..*end] {
                    f(t);
                }
            }
            // Generic backends never produce `Range` chunks, but honor one
            // robustly: full scan filtered to the interval.
            ChunkSpan::Range { lower, upper } => self.for_each(&mut |t| {
                if lower.as_ref().is_none_or(|lo| t >= lo) && upper.as_ref().is_none_or(|hi| t < hi)
                {
                    f(t);
                }
            }),
        }
    }

    /// Calls `f` for every stored tuple. Quiescent phases only.
    fn for_each(&self, f: &mut dyn FnMut(&TupleBuf));

    /// Number of stored tuples. Quiescent phases only.
    fn len(&self) -> usize;

    /// Whether the relation is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hint statistics accumulated in `ctx`, if this backend keeps any.
    fn hint_stats(&self, _ctx: &StorageCtx) -> Option<HintStats> {
        None
    }

    /// Removes every tuple, retaining the backend's allocated capacity
    /// where it can. Returns `true` when the receiver is now empty and
    /// reusable; the default returns `false` ("not supported — allocate a
    /// fresh storage instead"), which keeps the pre-existing behavior for
    /// backends without a cheap reset.
    ///
    /// The engine uses this to recycle the per-stratum delta/new side
    /// tables across fixpoint iterations: with the specialized B-tree's
    /// arena (`fastpath`), a cleared tree keeps its warm slabs, so the next
    /// iteration's inserts reuse memory instead of growing a new tree from
    /// the global allocator.
    fn clear(&mut self) -> bool {
        false
    }

    /// The specialized B-tree behind this storage, if that is what backs
    /// it. Lets [`merge_from`](Self::merge_from) recognize tree-to-tree
    /// merges and route them through the structure-aware parallel merge;
    /// wrappers forward to their inner storage.
    fn as_spec_btree(&self) -> Option<&BTreeSet<MAX_ARITY>> {
        None
    }

    /// The sharded B-tree backend behind this storage, if that is what
    /// backs it — the sharded analog of
    /// [`as_spec_btree`](Self::as_spec_btree). Lets
    /// [`merge_from`](Self::merge_from)/[`retract_from`](Self::retract_from)
    /// recognize shard-aligned pairs and run shard-parallel with zero
    /// cross-shard locks; wrappers forward to their inner storage.
    fn as_sharded(&self) -> Option<&ShardedStorage> {
        None
    }

    /// Number of independent shards backing this storage (1 for every
    /// unsharded backend). The evaluator routes bulk fills and the
    /// scheduler's home-shard assignment through this.
    fn shard_count(&self) -> usize {
        1
    }

    /// Merges every tuple of `src` into `self` on up to `workers` threads,
    /// returning how many tuples were actually added — the engine's
    /// end-of-iteration `new → full` fold, with duplicate detection fused
    /// into the merge itself (no second counting pass).
    ///
    /// The default is the sequential per-tuple fallback every backend
    /// supports; the specialized B-tree overrides it with the parallel
    /// structure-aware merge when `src` is also a B-tree. `src` must be
    /// quiescent.
    fn merge_from(&self, src: &dyn RelationStorage, workers: usize) -> u64 {
        let _ = workers;
        merge_sequential(self, src)
    }

    /// Removes every tuple of `src` from `self` on up to `workers` threads,
    /// returning how many were actually present — the deletion dual of
    /// [`merge_from`](Self::merge_from), used by the engine's retraction
    /// pass to subtract an over-deletion set from a full relation. `src`
    /// must be quiescent.
    fn retract_from(&self, src: &dyn RelationStorage, workers: usize) -> u64 {
        let _ = workers;
        retract_sequential(self, src)
    }

    /// Registers a secondary index keyed by the column permutation `perm`
    /// (which must cover the relation's full declared arity), backfilling
    /// it from the current contents on up to `workers` threads. Returns
    /// the index id — stable for the life of the storage, and idempotent:
    /// re-registering an existing permutation returns its id without
    /// rebuilding. The default returns `None` ("not supported"): backends
    /// without ordered secondary structures serve
    /// [`scan_index`](Self::scan_index) by filtering instead. Quiescent
    /// phases only.
    fn add_index(&mut self, perm: &[usize], workers: usize) -> Option<usize> {
        let _ = (perm, workers);
        None
    }

    /// The column permutations of every registered secondary index, in
    /// index-id order. Empty for backends without index support.
    fn index_perms(&self) -> Vec<Vec<usize>> {
        Vec::new()
    }

    /// Calls `f` for every tuple `t` with `t[perm[i]] == prefix[i]` for
    /// all `i < prefix.len()` — a prefix scan *in the permuted column
    /// order*, yielding tuples in their **original** column order.
    /// Backends with a registered index `index` serve this as a range scan
    /// of the permuted tree; the default filters a full scan, which is
    /// behaviorally identical to the unindexed scan-plus-equality-checks
    /// it replaces (so the planner may route through `scan_index` on any
    /// backend). Quiescent phases only.
    fn scan_index(
        &self,
        index: usize,
        perm: &[usize],
        prefix: &[u64],
        ctx: &mut StorageCtx,
        f: &mut dyn FnMut(&TupleBuf),
    ) {
        let _ = (index, ctx);
        self.for_each(&mut |t| {
            if prefix.iter().enumerate().all(|(i, &v)| t[perm[i]] == v) {
                f(t);
            }
        });
    }
}

/// The universal per-tuple merge fallback: iterate `src`, insert into
/// `dst`, count the tuples that were new.
fn merge_sequential(dst: &(impl RelationStorage + ?Sized), src: &dyn RelationStorage) -> u64 {
    let mut ctx = dst.make_ctx();
    let mut added = 0u64;
    src.for_each(&mut |t| {
        if dst.insert(t, &mut ctx) {
            added += 1;
        }
    });
    added
}

/// The universal per-tuple retraction fallback: iterate `src`, remove from
/// `dst`, count the tuples that were present.
fn retract_sequential(dst: &(impl RelationStorage + ?Sized), src: &dyn RelationStorage) -> u64 {
    let mut ctx = dst.make_ctx();
    let mut removed = 0u64;
    src.for_each(&mut |t| {
        if dst.remove(t, &mut ctx) {
            removed += 1;
        }
    });
    removed
}

/// Which data structure backs each relation — the engine-level analog of
/// the paper's Table 1 contestants in the §4.3 experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageKind {
    /// The specialized concurrent B-tree with operation hints (`btree`).
    SpecBTree,
    /// The specialized concurrent B-tree without hints (`btree (n/h)`).
    SpecBTreeNoHints,
    /// Red-black tree behind a global lock (`STL rbtset`).
    RbTreeLocked,
    /// Open-addressing hash set behind a global lock (`STL hashset`).
    HashSetLocked,
    /// The sequential Vec-node B-tree behind a global lock (`google btree`).
    GBTreeLocked,
    /// The lock-free split-ordered hash set (`TBB hashset`).
    ConcurrentHashSet,
    /// The specialized B-tree hash-partitioned across N independent
    /// per-shard trees, each with its own arena (`btree (sharded)`).
    /// The payload is the shard count; `0` means *auto* — resolved to
    /// the worker-thread count by `Engine::new`.
    ShardedBTree(usize),
}

impl StorageKind {
    /// All kinds, in the order the paper's Figure 5 legend lists them.
    pub const ALL: [StorageKind; 6] = [
        StorageKind::SpecBTree,
        StorageKind::SpecBTreeNoHints,
        StorageKind::RbTreeLocked,
        StorageKind::HashSetLocked,
        StorageKind::GBTreeLocked,
        StorageKind::ConcurrentHashSet,
    ];

    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            StorageKind::SpecBTree => "btree",
            StorageKind::SpecBTreeNoHints => "btree (n/h)",
            StorageKind::RbTreeLocked => "STL rbtset",
            StorageKind::HashSetLocked => "STL hashset",
            StorageKind::GBTreeLocked => "google btree",
            StorageKind::ConcurrentHashSet => "TBB hashset",
            StorageKind::ShardedBTree(_) => "btree (sharded)",
        }
    }

    /// Creates an empty relation of this kind.
    pub fn create(&self) -> Box<dyn RelationStorage> {
        match self {
            StorageKind::SpecBTree => Box::new(SpecBTreeStorage {
                tree: BTreeSet::new(),
                indexes: Vec::new(),
                hints: true,
            }),
            StorageKind::SpecBTreeNoHints => Box::new(SpecBTreeStorage {
                tree: BTreeSet::new(),
                indexes: Vec::new(),
                hints: false,
            }),
            StorageKind::RbTreeLocked => Box::new(RbTreeStorage(GlobalLock::new(RbTreeSet::new()))),
            StorageKind::HashSetLocked => {
                Box::new(HashSetStorage(GlobalLock::new(OaHashSet::new())))
            }
            StorageKind::GBTreeLocked => Box::new(GBTreeStorage(GlobalLock::new(GBTreeSet::new()))),
            StorageKind::ConcurrentHashSet => Box::new(ConcHashStorage(SplitOrderedSet::new())),
            StorageKind::ShardedBTree(n) => Box::new(ShardedStorage::new((*n).max(1))),
        }
    }
}

/// Computes the exclusive upper bound of a prefix range, or `None` when the
/// prefix is empty or saturated (scan to the end).
fn prefix_upper(prefix: &[u64]) -> Option<TupleBuf> {
    if prefix.is_empty() {
        return None;
    }
    let mut hi = pad(prefix);
    for i in (0..prefix.len()).rev() {
        let (v, overflow) = hi[i].overflowing_add(1);
        hi[i] = v;
        if !overflow {
            for w in hi[i + 1..].iter_mut() {
                *w = 0;
            }
            return Some(hi);
        }
    }
    None
}

// ---------------------------------------------------------------------
// Secondary index trees (column-permuted copies of the primary)
// ---------------------------------------------------------------------

/// One secondary index: a B-tree over column-permuted copies of the
/// primary tuples, so a search binding the permutation's leading columns
/// becomes an ordinary prefix range scan. `perm` covers the relation's
/// full declared arity — storing *whole* permuted tuples (not projections)
/// keeps the index a faithful bijection of the primary, which is what the
/// sync proptests pin.
struct IndexTree {
    perm: Vec<usize>,
    tree: BTreeSet<MAX_ARITY>,
}

/// Reorders `t` into index-key order: `out[i] = t[perm[i]]`.
#[inline]
fn permute_tuple(perm: &[usize], t: &TupleBuf) -> TupleBuf {
    let mut out = [0u64; MAX_ARITY];
    for (i, &c) in perm.iter().enumerate() {
        out[i] = t[c];
    }
    out
}

/// Inverts [`permute_tuple`]: `out[perm[i]] = p[i]`. Columns beyond the
/// declared arity are zero in every stored tuple, so this reconstructs
/// the original buffer exactly.
#[inline]
fn unpermute_tuple(perm: &[usize], p: &TupleBuf) -> TupleBuf {
    let mut out = [0u64; MAX_ARITY];
    for (i, &c) in perm.iter().enumerate() {
        out[c] = p[i];
    }
    out
}

impl IndexTree {
    #[inline]
    fn permute(&self, t: &TupleBuf) -> TupleBuf {
        permute_tuple(&self.perm, t)
    }

    #[inline]
    fn unpermute(&self, p: &TupleBuf) -> TupleBuf {
        unpermute_tuple(&self.perm, p)
    }
}

/// Sorts `tuples` and inserts them into `tree` on up to `workers` scoped
/// threads — the backfill path of `add_index`. Sorted, disjoint per-worker
/// runs make the hinted inserts near-sequential leaf appends.
/// Sorts ascending on up to `workers` threads: parallel chunk sorts
/// followed by parallel pairwise merges. Index backfill sorts millions of
/// permuted tuples in one shot, where a single-threaded `sort_unstable`
/// is the dominant cost of `add_index` on a populated relation.
fn par_sort_tuples(tuples: Vec<TupleBuf>, workers: usize) -> Vec<TupleBuf> {
    let n = tuples.len();
    let workers = workers.max(1).min(n.max(1));
    if workers == 1 || n < (1 << 15) {
        let mut t = tuples;
        t.sort_unstable();
        return t;
    }
    let per = n.div_ceil(workers);
    let mut runs: Vec<Vec<TupleBuf>> = tuples.chunks(per).map(<[TupleBuf]>::to_vec).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = runs
            .drain(..)
            .map(|mut run| {
                s.spawn(move || {
                    run.sort_unstable();
                    run
                })
            })
            .collect();
        runs = handles.into_iter().map(|h| h.join().unwrap()).collect();
    });
    while runs.len() > 1 {
        let odd = (runs.len() % 2 == 1).then(|| runs.pop().unwrap());
        let mut pairs = Vec::with_capacity(runs.len() / 2);
        while let (Some(b), Some(a)) = (runs.pop(), runs.pop()) {
            pairs.push((a, b));
        }
        std::thread::scope(|s| {
            let handles: Vec<_> = pairs
                .into_iter()
                .map(|(a, b)| s.spawn(move || merge_two_sorted(a, b)))
                .collect();
            runs = handles.into_iter().map(|h| h.join().unwrap()).collect();
        });
        runs.extend(odd);
    }
    runs.pop().unwrap_or_default()
}

fn merge_two_sorted(a: Vec<TupleBuf>, b: Vec<TupleBuf>) -> Vec<TupleBuf> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Sorts, dedupes, and bulk-builds a packed tree from `tuples` in O(n)
/// — the backfill path for registering an index on a populated relation.
fn build_index_tree(tuples: Vec<TupleBuf>, workers: usize) -> BTreeSet<MAX_ARITY> {
    let mut sorted = par_sort_tuples(tuples, workers);
    sorted.dedup();
    BTreeSet::from_sorted(sorted)
}

fn bulk_insert_sorted(tree: &BTreeSet<MAX_ARITY>, mut tuples: Vec<TupleBuf>, workers: usize) {
    tuples.sort_unstable();
    tuples.dedup();
    let workers = workers.max(1).min(tuples.len().max(1));
    if workers == 1 {
        let mut hints = tree.create_hints();
        for t in &tuples {
            tree.insert_hinted(*t, &mut hints);
        }
        return;
    }
    let per = tuples.len().div_ceil(workers);
    std::thread::scope(|s| {
        for chunk in tuples.chunks(per) {
            s.spawn(move || {
                let mut hints = tree.create_hints();
                for t in chunk {
                    tree.insert_hinted(*t, &mut hints);
                }
            });
        }
    });
}

// ---------------------------------------------------------------------
// Specialized B-tree backend
// ---------------------------------------------------------------------

struct SpecBTreeStorage {
    tree: BTreeSet<MAX_ARITY>,
    indexes: Vec<IndexTree>,
    hints: bool,
}

/// Per-thread context for [`SpecBTreeStorage`]: hints for the primary
/// tree plus one hint set per secondary index. `idx` is extended lazily —
/// contexts created before an index registration grow the missing slots
/// on first use.
struct SpecCtx {
    main: BTreeHints<MAX_ARITY>,
    idx: Vec<BTreeHints<MAX_ARITY>>,
}

impl SpecBTreeStorage {
    #[inline]
    fn ctx_of(ctx: &mut StorageCtx) -> &mut SpecCtx {
        ctx.downcast_mut().expect("spec btree ctx")
    }

    /// The hint set for index `i`, growing the context if it predates the
    /// index registration.
    fn idx_hints<'c>(&self, ctx: &'c mut SpecCtx, i: usize) -> &'c mut BTreeHints<MAX_ARITY> {
        while ctx.idx.len() <= i {
            ctx.idx.push(self.indexes[ctx.idx.len()].tree.create_hints());
        }
        &mut ctx.idx[i]
    }

    /// Replays every tuple of `src` against all secondary indexes —
    /// insertion or removal mirroring the primary bulk op that bypassed
    /// the per-tuple [`RelationStorage::insert`] path. Parallel over
    /// source chunks; every worker touches every index tree (the trees
    /// are concurrent, so this contends instead of locking out).
    fn maintain_indexes(&self, src: &dyn RelationStorage, workers: usize, remove: bool) {
        if self.indexes.is_empty() || src.is_empty() {
            return;
        }
        let timer = telemetry::start_timer();
        let chunks = src.partition(workers.max(1) * 2, &[]);
        let work = |chunk: &StorageChunk, sctx: &mut StorageCtx, hints: &mut Vec<BTreeHints<MAX_ARITY>>| {
            src.scan_chunk(chunk, sctx, &mut |t| {
                for (ix, h) in self.indexes.iter().zip(hints.iter_mut()) {
                    let p = ix.permute(t);
                    if remove {
                        ix.tree.remove(&p);
                    } else {
                        ix.tree.insert_hinted(p, h);
                    }
                }
            });
        };
        let fresh_hints = || -> Vec<BTreeHints<MAX_ARITY>> {
            self.indexes.iter().map(|ix| ix.tree.create_hints()).collect()
        };
        if workers <= 1 || chunks.len() <= 1 {
            let mut sctx = src.make_ctx();
            let mut hints = fresh_hints();
            for c in &chunks {
                work(c, &mut sctx, &mut hints);
            }
        } else {
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..workers.min(chunks.len()) {
                    s.spawn(|| {
                        let mut sctx = src.make_ctx();
                        let mut hints = fresh_hints();
                        loop {
                            let i = cursor.fetch_add(1, Relaxed);
                            if i >= chunks.len() {
                                break;
                            }
                            work(&chunks[i], &mut sctx, &mut hints);
                        }
                    });
                }
            });
        }
        timer.observe(telemetry::Hist::EvalIndexMaintainNanos);
    }
}

impl RelationStorage for SpecBTreeStorage {
    fn make_ctx(&self) -> StorageCtx {
        Box::new(SpecCtx {
            main: self.tree.create_hints(),
            idx: self.indexes.iter().map(|ix| ix.tree.create_hints()).collect(),
        })
    }

    fn insert(&self, t: &TupleBuf, ctx: &mut StorageCtx) -> bool {
        let ctx = Self::ctx_of(ctx);
        let added = if self.hints {
            self.tree.insert_hinted(*t, &mut ctx.main)
        } else {
            self.tree.insert(*t)
        };
        if added {
            for i in 0..self.indexes.len() {
                let p = self.indexes[i].permute(t);
                if self.hints {
                    let h = self.idx_hints(ctx, i);
                    self.indexes[i].tree.insert_hinted(p, h);
                } else {
                    self.indexes[i].tree.insert(p);
                }
            }
        }
        added
    }

    fn remove(&self, t: &TupleBuf, _ctx: &mut StorageCtx) -> bool {
        // No hinted variant: the removal protocol's restart-on-conflict
        // descent re-validates from the root, so a cached leaf lease buys
        // nothing and may be mid-unlink.
        let removed = self.tree.remove(t);
        if removed {
            for ix in &self.indexes {
                ix.tree.remove(&ix.permute(t));
            }
        }
        removed
    }

    fn contains(&self, t: &TupleBuf, ctx: &mut StorageCtx) -> bool {
        let ctx = Self::ctx_of(ctx);
        if self.hints {
            self.tree.contains_hinted(t, &mut ctx.main)
        } else {
            self.tree.contains(t)
        }
    }

    fn scan_prefix(&self, prefix: &[u64], ctx: &mut StorageCtx, f: &mut dyn FnMut(&TupleBuf)) {
        let lo = pad(prefix);
        let hi = prefix_upper(prefix);
        if self.hints {
            let hints = &mut Self::ctx_of(ctx).main;
            let it = self.tree.lower_bound_hinted(&lo, hints);
            // The explicit upper-bound probe mirrors Figure 1's synthesized
            // code (`upper_bound({t1[1]+1, 0})`) and keeps the Table 2
            // operation counts comparable.
            if let Some(hi) = &hi {
                let _ = self.tree.upper_bound_hinted(hi, hints);
            }
            for t in it {
                if let Some(hi) = &hi {
                    if specbtree::cmp3(&t, hi) != std::cmp::Ordering::Less {
                        break;
                    }
                }
                f(&t);
            }
        } else {
            let it = self.tree.lower_bound(&lo);
            if let Some(hi) = &hi {
                let _ = self.tree.upper_bound(hi);
            }
            for t in it {
                if let Some(hi) = &hi {
                    if specbtree::cmp3(&t, hi) != std::cmp::Ordering::Less {
                        break;
                    }
                }
                f(&t);
            }
        }
    }

    fn partition(&self, n: usize, prefix: &[u64]) -> Vec<StorageChunk> {
        if self.tree.is_empty() {
            return Vec::new();
        }
        let chunks = if prefix.is_empty() {
            self.tree.partition(n)
        } else {
            let lo = pad(prefix);
            let hi = prefix_upper(prefix);
            self.tree.partition_range(n, Some(&lo), hi.as_ref())
        };
        chunks
            .into_iter()
            .map(|c| StorageChunk {
                shard: 0,
                span: ChunkSpan::Range {
                    lower: c.lower,
                    upper: c.upper,
                },
            })
            .collect()
    }

    fn scan_chunk(&self, chunk: &StorageChunk, ctx: &mut StorageCtx, f: &mut dyn FnMut(&TupleBuf)) {
        let ChunkSpan::Range { lower, upper } = &chunk.span else {
            // Snapshot chunks carry their own tuples; no tree access needed.
            if let ChunkSpan::Materialized { tuples, start, end } = &chunk.span {
                for t in &tuples[*start..*end] {
                    f(t);
                }
            }
            return;
        };
        let it = match (lower, self.hints) {
            (Some(lo), true) => self.tree.lower_bound_hinted(lo, &mut Self::ctx_of(ctx).main),
            (Some(lo), false) => self.tree.lower_bound(lo),
            (None, _) => self.tree.iter(),
        };
        // No upper_bound probe here: chunk boundaries come from
        // `partition`'s separators, not from a synthesized range query, so
        // probing would distort the Table 2 operation counts.
        for t in it {
            if let Some(hi) = upper {
                if specbtree::cmp3(&t, hi) != std::cmp::Ordering::Less {
                    break;
                }
            }
            f(&t);
        }
    }

    fn for_each(&self, f: &mut dyn FnMut(&TupleBuf)) {
        for t in self.tree.iter() {
            f(&t);
        }
    }

    fn len(&self) -> usize {
        self.tree.len()
    }

    fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    fn hint_stats(&self, ctx: &StorageCtx) -> Option<HintStats> {
        ctx.downcast_ref::<SpecCtx>().map(|c| {
            let mut agg = c.main.stats;
            for h in &c.idx {
                agg.merge(&h.stats);
            }
            agg
        })
    }

    fn clear(&mut self) -> bool {
        // O(slabs) arena reset under `fastpath` (warm slabs retained),
        // recursive node walk otherwise. Clearing re-brands the tree, so
        // hints cached in still-live worker contexts degrade to misses
        // rather than dangling. Index trees clear alongside the primary
        // but keep their registered permutations.
        self.tree.clear();
        for ix in &mut self.indexes {
            ix.tree.clear();
        }
        true
    }

    fn as_spec_btree(&self) -> Option<&BTreeSet<MAX_ARITY>> {
        Some(&self.tree)
    }

    fn merge_from(&self, src: &dyn RelationStorage, workers: usize) -> u64 {
        match src.as_spec_btree() {
            // Tree-to-tree: the structure-aware parallel merge (partition
            // by the target's separators, bulk-load/splice disjoint runs).
            // The bulk path bypasses per-tuple `insert`, so secondary
            // indexes are replayed explicitly afterwards.
            Some(tree) => {
                let added = self.tree.insert_all_parallel(tree, workers.max(1));
                self.maintain_indexes(src, workers, false);
                added
            }
            // The per-tuple fallback routes through `insert`, which
            // maintains indexes inline.
            None => merge_sequential(self, src),
        }
    }

    fn retract_from(&self, src: &dyn RelationStorage, workers: usize) -> u64 {
        match src.as_spec_btree() {
            // Tree-to-tree: chunk the victim set along the target's
            // separators and remove each run on its own worker.
            Some(tree) => {
                let removed = self.tree.remove_all_parallel(tree, workers.max(1));
                self.maintain_indexes(src, workers, true);
                removed
            }
            None => retract_sequential(self, src),
        }
    }

    fn add_index(&mut self, perm: &[usize], workers: usize) -> Option<usize> {
        if let Some(i) = self.indexes.iter().position(|ix| ix.perm == perm) {
            return Some(i);
        }
        let timer = telemetry::start_timer();
        let mut ix = IndexTree {
            perm: perm.to_vec(),
            tree: BTreeSet::new(),
        };
        if !self.tree.is_empty() {
            let permuted: Vec<TupleBuf> = self.tree.iter().map(|t| ix.permute(&t)).collect();
            ix.tree = build_index_tree(permuted, workers);
        }
        self.indexes.push(ix);
        timer.observe(telemetry::Hist::EvalIndexMaintainNanos);
        telemetry::count(telemetry::Counter::EvalIndexBuilds);
        Some(self.indexes.len() - 1)
    }

    fn index_perms(&self) -> Vec<Vec<usize>> {
        self.indexes.iter().map(|ix| ix.perm.clone()).collect()
    }

    fn scan_index(
        &self,
        index: usize,
        perm: &[usize],
        prefix: &[u64],
        ctx: &mut StorageCtx,
        f: &mut dyn FnMut(&TupleBuf),
    ) {
        let Some(ix) = self.indexes.get(index) else {
            // No such index (e.g. a storage rebuilt mid-retraction before
            // re-registration): the filtered-full-scan fallback is always
            // correct.
            self.for_each(&mut |t| {
                if prefix.iter().enumerate().all(|(i, &v)| t[perm[i]] == v) {
                    f(t);
                }
            });
            return;
        };
        debug_assert_eq!(ix.perm, perm, "index id / permutation mismatch");
        let lo = pad(prefix);
        let hi = prefix_upper(prefix);
        if self.hints {
            let ctx = Self::ctx_of(ctx);
            let h = self.idx_hints(ctx, index);
            let it = ix.tree.lower_bound_hinted(&lo, h);
            // Explicit upper-bound probe, mirroring the primary prefix
            // scan (Figure 1) so Table 2 operation counts stay comparable.
            if let Some(hi) = &hi {
                let _ = ix.tree.upper_bound_hinted(hi, h);
            }
            for t in it {
                if let Some(hi) = &hi {
                    if specbtree::cmp3(&t, hi) != std::cmp::Ordering::Less {
                        break;
                    }
                }
                f(&ix.unpermute(&t));
            }
        } else {
            let it = ix.tree.lower_bound(&lo);
            if let Some(hi) = &hi {
                let _ = ix.tree.upper_bound(hi);
            }
            for t in it {
                if let Some(hi) = &hi {
                    if specbtree::cmp3(&t, hi) != std::cmp::Ordering::Less {
                        break;
                    }
                }
                f(&ix.unpermute(&t));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Sharded specialized-B-tree backend
// ---------------------------------------------------------------------

/// Routes a tuple to its shard by the **leading column only**, so every
/// tuple sharing a first column — and therefore every bounded prefix scan,
/// which fixes at least that column — lands in exactly one shard. The
/// multiplier is the 64-bit golden-ratio (Fibonacci) mixing constant; the
/// high bits it spreads dense small keys into are what the modulus sees.
pub fn shard_of(t0: u64, nshards: usize) -> usize {
    if nshards <= 1 {
        return 0;
    }
    (t0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % nshards
}

/// The specialized B-tree hash-partitioned across N independent trees.
///
/// Each shard is a complete [`BTreeSet`] with its own arena, so slabs are
/// allocated by whichever thread populates the shard and no two shards
/// ever share a root, a lock word, or an allocator. [`shard_of`] routes by
/// the leading tuple column: point operations and bounded prefix scans
/// touch exactly one shard, full scans visit shards in index order (tuple
/// order *across* shards is not globally sorted — every engine-level
/// consumer sorts or is order-insensitive).
///
/// `merge_from`/`retract_from` against another equally-sharded storage run
/// one worker per shard with **zero cross-shard locks**: worker *i* only
/// ever touches shard *i* of both trees, so the only synchronization left
/// is the shard-index cursor. This is strictly stronger than the
/// single-tree parallel merge, whose separator-aligned chunks still
/// contend on shared parents and the shared arena.
pub struct ShardedStorage {
    shards: Vec<BTreeSet<MAX_ARITY>>,
    indexes: Vec<ShardedIndex>,
}

/// One secondary index of a sharded relation: per-shard permuted trees
/// routed by the **permuted** leading column, so an index scan (which by
/// construction binds that column) stays single-shard exactly like a
/// primary prefix scan.
struct ShardedIndex {
    perm: Vec<usize>,
    shards: Vec<BTreeSet<MAX_ARITY>>,
}

impl ShardedIndex {
    #[inline]
    fn permute_one(&self, t: &TupleBuf) -> TupleBuf {
        permute_tuple(&self.perm, t)
    }

    /// Permutes `t` and appends it to the destination-shard bucket.
    #[inline]
    fn bucket(&self, t: &TupleBuf, buckets: &mut [Vec<TupleBuf>]) {
        let p = permute_tuple(&self.perm, t);
        buckets[shard_of(p[0], buckets.len())].push(p);
    }

    /// Applies a bucketed batch — sorted hinted inserts or removes — with
    /// each destination shard owned by exactly one worker: the same
    /// zero-cross-shard-lock discipline as the primary sharded merge.
    fn apply_buckets(&self, buckets: Vec<Vec<TupleBuf>>, workers: usize, remove: bool) {
        let w = workers.max(1).min(buckets.len().max(1));
        let mut per_worker: Vec<Vec<(usize, Vec<TupleBuf>)>> = (0..w).map(|_| Vec::new()).collect();
        for (b, bucket) in buckets.into_iter().enumerate() {
            if !bucket.is_empty() {
                per_worker[b % w].push((b, bucket));
            }
        }
        let shards = &self.shards;
        let run = |mine: Vec<(usize, Vec<TupleBuf>)>| {
            for (b, bucket) in mine {
                if remove {
                    for p in &bucket {
                        shards[b].remove(p);
                    }
                } else {
                    bulk_insert_sorted(&shards[b], bucket, 1);
                }
            }
        };
        if w == 1 {
            for mine in per_worker {
                run(mine);
            }
        } else {
            let run = &run;
            std::thread::scope(|s| {
                for mine in per_worker {
                    s.spawn(move || run(mine));
                }
            });
        }
    }
}

/// Per-thread context for [`ShardedStorage`]: one hint set per primary
/// shard, plus one per shard per secondary index (extended lazily for
/// contexts that predate an index registration).
struct ShardedCtx {
    main: Vec<BTreeHints<MAX_ARITY>>,
    idx: Vec<Vec<BTreeHints<MAX_ARITY>>>,
}

impl ShardedStorage {
    /// Creates an empty storage with `nshards` shards (min 1).
    pub fn new(nshards: usize) -> Self {
        Self {
            shards: (0..nshards.max(1)).map(|_| BTreeSet::new()).collect(),
            indexes: Vec::new(),
        }
    }

    /// Per-shard tuple counts, in shard-index order — the raw balance
    /// figure `Engine::storage_report` and the shard bench expose.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|t| t.len()).collect()
    }

    /// The shards themselves (read-only; used for per-shard censuses).
    pub fn shards(&self) -> &[BTreeSet<MAX_ARITY>] {
        &self.shards
    }

    #[inline]
    fn route(&self, t0: u64) -> usize {
        shard_of(t0, self.shards.len())
    }

    #[inline]
    fn hints(ctx: &mut StorageCtx) -> &mut Vec<BTreeHints<MAX_ARITY>> {
        &mut ctx
            .downcast_mut::<ShardedCtx>()
            .expect("sharded btree ctx")
            .main
    }

    /// The hint set for shard `s` of index `i`, growing the context if it
    /// predates the index registration.
    fn idx_hints<'c>(
        &self,
        ctx: &'c mut StorageCtx,
        i: usize,
        s: usize,
    ) -> &'c mut BTreeHints<MAX_ARITY> {
        let ctx = ctx.downcast_mut::<ShardedCtx>().expect("sharded btree ctx");
        while ctx.idx.len() <= i {
            let ix = &self.indexes[ctx.idx.len()];
            ctx.idx.push(ix.shards.iter().map(|t| t.create_hints()).collect());
        }
        &mut ctx.idx[i][s]
    }

    /// Replays every tuple of `src` against all secondary indexes after a
    /// bulk primary merge/retract that bypassed per-tuple `insert`.
    /// Materializes the moved set once, buckets it per index by
    /// *destination index shard*, and applies each bucket on its owning
    /// worker — zero cross-shard locks, like the primary sharded merge.
    fn maintain_indexes(&self, src: &dyn RelationStorage, workers: usize, remove: bool) {
        if self.indexes.is_empty() || src.is_empty() {
            return;
        }
        let timer = telemetry::start_timer();
        let mut moved = Vec::with_capacity(src.len());
        src.for_each(&mut |t| moved.push(*t));
        for ix in &self.indexes {
            let mut buckets: Vec<Vec<TupleBuf>> = vec![Vec::new(); ix.shards.len()];
            for t in &moved {
                ix.bucket(t, &mut buckets);
            }
            ix.apply_buckets(buckets, workers, remove);
        }
        timer.observe(telemetry::Hist::EvalIndexMaintainNanos);
    }

    /// Runs `op(i)` for every shard index on up to `workers` scoped
    /// threads, summing the results. Zero cross-shard locks by
    /// construction: the shard-index cursor is the only shared state, so
    /// no two workers ever process the same shard.
    fn shard_parallel(&self, workers: usize, op: &(dyn Fn(usize) -> u64 + Sync)) -> u64 {
        let n = self.shards.len();
        let run_one = |i: usize| -> u64 {
            let timer = telemetry::start_timer();
            let _span = telemetry::span("eval.shard", i as u64);
            let r = op(i);
            timer.observe(telemetry::Hist::EvalShardMergeNanos);
            telemetry::count(telemetry::Counter::EvalShardMerges);
            // Balance = per-shard tuples this operation moved. NOT the
            // absolute shard size: `BTreeSet::len` is a deliberate O(n)
            // full iteration, far too hot for a per-merge probe (absolute
            // sizes are in `shard_lens`, sampled at quiescent points).
            telemetry::record(telemetry::Hist::EvalShardBalance, r);
            r
        };
        let workers = workers.max(1).min(n);
        if workers == 1 {
            return (0..n).map(run_one).sum();
        }
        let cursor = AtomicUsize::new(0);
        let total = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = cursor.fetch_add(1, Relaxed);
                    if i >= n {
                        break;
                    }
                    total.fetch_add(run_one(i), Relaxed);
                });
            }
        });
        total.into_inner()
    }
}

impl RelationStorage for ShardedStorage {
    fn make_ctx(&self) -> StorageCtx {
        // One hint set per shard: a worker's context follows it across
        // whichever shards it ends up scanning or probing.
        Box::new(ShardedCtx {
            main: self.shards.iter().map(|t| t.create_hints()).collect(),
            idx: self
                .indexes
                .iter()
                .map(|ix| ix.shards.iter().map(|t| t.create_hints()).collect())
                .collect(),
        })
    }

    fn insert(&self, t: &TupleBuf, ctx: &mut StorageCtx) -> bool {
        let s = self.route(t[0]);
        let added = self.shards[s].insert_hinted(*t, &mut Self::hints(ctx)[s]);
        if added {
            for i in 0..self.indexes.len() {
                let ix = &self.indexes[i];
                let p = ix.permute_one(t);
                let d = shard_of(p[0], ix.shards.len());
                let h = self.idx_hints(ctx, i, d);
                ix.shards[d].insert_hinted(p, h);
            }
        }
        added
    }

    fn remove(&self, t: &TupleBuf, _ctx: &mut StorageCtx) -> bool {
        // Unhinted, matching the single-tree backend: the removal
        // protocol restarts from the root anyway.
        let removed = self.shards[self.route(t[0])].remove(t);
        if removed {
            for ix in &self.indexes {
                let p = ix.permute_one(t);
                ix.shards[shard_of(p[0], ix.shards.len())].remove(&p);
            }
        }
        removed
    }

    fn contains(&self, t: &TupleBuf, ctx: &mut StorageCtx) -> bool {
        let s = self.route(t[0]);
        self.shards[s].contains_hinted(t, &mut Self::hints(ctx)[s])
    }

    fn scan_prefix(&self, prefix: &[u64], ctx: &mut StorageCtx, f: &mut dyn FnMut(&TupleBuf)) {
        if prefix.is_empty() {
            // Full scan: shards in index order (not globally sorted).
            for tree in &self.shards {
                for t in tree.iter() {
                    f(&t);
                }
            }
            return;
        }
        // A bounded prefix fixes the leading column, so exactly one shard
        // can hold matches — the same single-tree scan as before, minus
        // (nshards - 1) trees of irrelevant structure.
        let s = self.route(prefix[0]);
        let lo = pad(prefix);
        let hi = prefix_upper(prefix);
        let hints = &mut Self::hints(ctx)[s];
        let it = self.shards[s].lower_bound_hinted(&lo, hints);
        // Explicit upper-bound probe, mirroring Figure 1 (see the
        // single-tree backend).
        if let Some(hi) = &hi {
            let _ = self.shards[s].upper_bound_hinted(hi, hints);
        }
        for t in it {
            if let Some(hi) = &hi {
                if specbtree::cmp3(&t, hi) != std::cmp::Ordering::Less {
                    break;
                }
            }
            f(&t);
        }
    }

    fn partition(&self, n: usize, prefix: &[u64]) -> Vec<StorageChunk> {
        let to_chunk = |s: usize| {
            move |c: specbtree::RangeChunk<MAX_ARITY>| StorageChunk {
                shard: s,
                span: ChunkSpan::Range {
                    lower: c.lower,
                    upper: c.upper,
                },
            }
        };
        if !prefix.is_empty() {
            // One shard holds every match; split inside it.
            let s = self.route(prefix[0]);
            let lo = pad(prefix);
            let hi = prefix_upper(prefix);
            return self.shards[s]
                .partition_range(n, Some(&lo), hi.as_ref())
                .into_iter()
                .map(to_chunk(s))
                .collect();
        }
        // Full-scan split: every shard contributes its share of chunks,
        // emitted grouped shard-by-shard so the scheduler can hand each
        // worker a contiguous home-shard run.
        let per = (n / self.shards.len()).max(1);
        let mut out = Vec::new();
        for (s, tree) in self.shards.iter().enumerate() {
            if tree.is_empty() {
                continue;
            }
            out.extend(tree.partition(per).into_iter().map(to_chunk(s)));
        }
        out
    }

    fn scan_chunk(&self, chunk: &StorageChunk, ctx: &mut StorageCtx, f: &mut dyn FnMut(&TupleBuf)) {
        let ChunkSpan::Range { lower, upper } = &chunk.span else {
            if let ChunkSpan::Materialized { tuples, start, end } = &chunk.span {
                for t in &tuples[*start..*end] {
                    f(t);
                }
            }
            return;
        };
        let tree = &self.shards[chunk.shard];
        let it = match lower {
            Some(lo) => tree.lower_bound_hinted(lo, &mut Self::hints(ctx)[chunk.shard]),
            None => tree.iter(),
        };
        for t in it {
            if let Some(hi) = upper {
                if specbtree::cmp3(&t, hi) != std::cmp::Ordering::Less {
                    break;
                }
            }
            f(&t);
        }
    }

    fn for_each(&self, f: &mut dyn FnMut(&TupleBuf)) {
        for tree in &self.shards {
            for t in tree.iter() {
                f(&t);
            }
        }
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|t| t.len()).sum()
    }

    fn is_empty(&self) -> bool {
        self.shards.iter().all(|t| t.is_empty())
    }

    fn hint_stats(&self, ctx: &StorageCtx) -> Option<HintStats> {
        ctx.downcast_ref::<ShardedCtx>().map(|c| {
            let mut agg = HintStats::default();
            for h in c.main.iter().chain(c.idx.iter().flatten()) {
                agg.merge(&h.stats);
            }
            agg
        })
    }

    fn clear(&mut self) -> bool {
        for tree in &mut self.shards {
            tree.clear();
        }
        for ix in &mut self.indexes {
            for tree in &mut ix.shards {
                tree.clear();
            }
        }
        true
    }

    fn as_sharded(&self) -> Option<&ShardedStorage> {
        Some(self)
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn merge_from(&self, src: &dyn RelationStorage, workers: usize) -> u64 {
        match src.as_sharded() {
            // Shard-aligned: one worker per shard, each merging its
            // shard's delta into its shard's tree. No cross-shard locks —
            // the per-shard merge runs single-threaded against a tree no
            // other worker touches. The bulk path bypasses per-tuple
            // `insert`, so secondary indexes are replayed afterwards.
            Some(other) if other.shards.len() == self.shards.len() => {
                let added = self.shard_parallel(workers, &|i| {
                    self.shards[i].insert_all_parallel(&other.shards[i], 1)
                });
                self.maintain_indexes(src, workers, false);
                added
            }
            // Mismatched shard counts or a foreign backend: route every
            // tuple through the shard map individually (`insert` maintains
            // indexes inline).
            _ => merge_sequential(self, src),
        }
    }

    fn retract_from(&self, src: &dyn RelationStorage, workers: usize) -> u64 {
        match src.as_sharded() {
            Some(other) if other.shards.len() == self.shards.len() => {
                let removed = self.shard_parallel(workers, &|i| {
                    self.shards[i].remove_all_parallel(&other.shards[i], 1)
                });
                self.maintain_indexes(src, workers, true);
                removed
            }
            _ => retract_sequential(self, src),
        }
    }

    fn add_index(&mut self, perm: &[usize], workers: usize) -> Option<usize> {
        if let Some(i) = self.indexes.iter().position(|ix| ix.perm == perm) {
            return Some(i);
        }
        let timer = telemetry::start_timer();
        let mut ix = ShardedIndex {
            perm: perm.to_vec(),
            shards: (0..self.shards.len()).map(|_| BTreeSet::new()).collect(),
        };
        if !self.is_empty() {
            let mut buckets: Vec<Vec<TupleBuf>> = vec![Vec::new(); ix.shards.len()];
            for tree in &self.shards {
                for t in tree.iter() {
                    ix.bucket(&t, &mut buckets);
                }
            }
            // One packed O(n) build per shard beats routing every tuple
            // through the insert path of an initially empty tree; leftover
            // workers parallelize the per-shard sorts.
            let per_shard = (workers / ix.shards.len()).max(1);
            let mut built = Vec::with_capacity(buckets.len());
            std::thread::scope(|s| {
                let handles: Vec<_> = buckets
                    .into_iter()
                    .map(|b| s.spawn(move || build_index_tree(b, per_shard)))
                    .collect();
                built = handles.into_iter().map(|h| h.join().unwrap()).collect();
            });
            ix.shards = built;
        }
        self.indexes.push(ix);
        timer.observe(telemetry::Hist::EvalIndexMaintainNanos);
        telemetry::count(telemetry::Counter::EvalIndexBuilds);
        Some(self.indexes.len() - 1)
    }

    fn index_perms(&self) -> Vec<Vec<usize>> {
        self.indexes.iter().map(|ix| ix.perm.clone()).collect()
    }

    fn scan_index(
        &self,
        index: usize,
        perm: &[usize],
        prefix: &[u64],
        ctx: &mut StorageCtx,
        f: &mut dyn FnMut(&TupleBuf),
    ) {
        let Some(ix) = self.indexes.get(index) else {
            self.for_each(&mut |t| {
                if prefix.iter().enumerate().all(|(i, &v)| t[perm[i]] == v) {
                    f(t);
                }
            });
            return;
        };
        debug_assert_eq!(ix.perm, perm, "index id / permutation mismatch");
        if prefix.is_empty() {
            self.for_each(f);
            return;
        }
        // The permuted prefix binds the permuted leading column, so the
        // scan stays single-shard — same locality as a primary prefix scan.
        let s = shard_of(prefix[0], ix.shards.len());
        let lo = pad(prefix);
        let hi = prefix_upper(prefix);
        let h = self.idx_hints(ctx, index, s);
        let it = ix.shards[s].lower_bound_hinted(&lo, h);
        if let Some(hi) = &hi {
            let _ = ix.shards[s].upper_bound_hinted(hi, h);
        }
        for t in it {
            if let Some(hi) = &hi {
                if specbtree::cmp3(&t, hi) != std::cmp::Ordering::Less {
                    break;
                }
            }
            f(&unpermute_tuple(&ix.perm, &t));
        }
    }
}

// ---------------------------------------------------------------------
// Globally locked sequential backends
// ---------------------------------------------------------------------

struct RbTreeStorage(GlobalLock<RbTreeSet<TupleBuf>>);

impl RelationStorage for RbTreeStorage {
    fn make_ctx(&self) -> StorageCtx {
        Box::new(())
    }

    fn insert(&self, t: &TupleBuf, _ctx: &mut StorageCtx) -> bool {
        self.0.with(|s| s.insert(*t))
    }

    fn remove(&self, t: &TupleBuf, _ctx: &mut StorageCtx) -> bool {
        self.0.with(|s| s.remove(t))
    }

    fn contains(&self, t: &TupleBuf, _ctx: &mut StorageCtx) -> bool {
        self.0.with(|s| s.contains(t))
    }

    fn scan_prefix(&self, prefix: &[u64], _ctx: &mut StorageCtx, f: &mut dyn FnMut(&TupleBuf)) {
        let lo = pad(prefix);
        let hi = prefix_upper(prefix);
        self.0.with(|s| {
            for t in s.lower_bound(&lo) {
                if let Some(hi) = &hi {
                    if t >= *hi {
                        break;
                    }
                }
                f(&t);
            }
        });
    }

    fn for_each(&self, f: &mut dyn FnMut(&TupleBuf)) {
        self.0.with(|s| {
            for t in s.iter() {
                f(&t);
            }
        });
    }

    fn len(&self) -> usize {
        self.0.with(|s| s.len())
    }
}

struct GBTreeStorage(GlobalLock<GBTreeSet<TupleBuf>>);

impl RelationStorage for GBTreeStorage {
    fn make_ctx(&self) -> StorageCtx {
        Box::new(())
    }

    fn insert(&self, t: &TupleBuf, _ctx: &mut StorageCtx) -> bool {
        self.0.with(|s| s.insert(*t))
    }

    fn remove(&self, t: &TupleBuf, _ctx: &mut StorageCtx) -> bool {
        self.0.with(|s| s.remove(t))
    }

    fn contains(&self, t: &TupleBuf, _ctx: &mut StorageCtx) -> bool {
        self.0.with(|s| s.contains(t))
    }

    fn scan_prefix(&self, prefix: &[u64], _ctx: &mut StorageCtx, f: &mut dyn FnMut(&TupleBuf)) {
        let lo = pad(prefix);
        let hi = prefix_upper(prefix);
        self.0.with(|s| {
            for t in s.lower_bound(&lo) {
                if let Some(hi) = &hi {
                    if t >= *hi {
                        break;
                    }
                }
                f(&t);
            }
        });
    }

    fn for_each(&self, f: &mut dyn FnMut(&TupleBuf)) {
        self.0.with(|s| {
            for t in s.iter() {
                f(&t);
            }
        });
    }

    fn len(&self) -> usize {
        self.0.with(|s| s.len())
    }
}

struct HashSetStorage(GlobalLock<OaHashSet<TupleBuf>>);

impl RelationStorage for HashSetStorage {
    fn make_ctx(&self) -> StorageCtx {
        Box::new(())
    }

    fn insert(&self, t: &TupleBuf, _ctx: &mut StorageCtx) -> bool {
        self.0.with(|s| s.insert(*t))
    }

    fn remove(&self, t: &TupleBuf, _ctx: &mut StorageCtx) -> bool {
        self.0.with(|s| s.remove(t))
    }

    fn contains(&self, t: &TupleBuf, _ctx: &mut StorageCtx) -> bool {
        self.0.with(|s| s.contains(t))
    }

    fn scan_prefix(&self, prefix: &[u64], _ctx: &mut StorageCtx, f: &mut dyn FnMut(&TupleBuf)) {
        // Hash sets cannot answer range queries: full scan + filter — the
        // structural deficiency the paper's comparison highlights.
        let plen = prefix.len();
        self.0.with(|s| {
            for t in s.iter() {
                if t[..plen] == *prefix {
                    f(&t);
                }
            }
        });
    }

    fn for_each(&self, f: &mut dyn FnMut(&TupleBuf)) {
        self.0.with(|s| {
            for t in s.iter() {
                f(&t);
            }
        });
    }

    fn len(&self) -> usize {
        self.0.with(|s| s.len())
    }
}

struct ConcHashStorage(SplitOrderedSet<TupleBuf>);

impl RelationStorage for ConcHashStorage {
    fn make_ctx(&self) -> StorageCtx {
        Box::new(())
    }

    fn insert(&self, t: &TupleBuf, _ctx: &mut StorageCtx) -> bool {
        self.0.insert(*t)
    }

    fn remove(&self, t: &TupleBuf, _ctx: &mut StorageCtx) -> bool {
        self.0.remove(t)
    }

    fn contains(&self, t: &TupleBuf, _ctx: &mut StorageCtx) -> bool {
        self.0.contains(t)
    }

    fn scan_prefix(&self, prefix: &[u64], _ctx: &mut StorageCtx, f: &mut dyn FnMut(&TupleBuf)) {
        // Unordered structure: range queries degrade to a full scan.
        let plen = prefix.len();
        self.0.for_each(|t| {
            if t[..plen] == *prefix {
                f(t);
            }
        });
    }

    fn for_each(&self, f: &mut dyn FnMut(&TupleBuf)) {
        self.0.for_each(|t| f(t));
    }

    fn len(&self) -> usize {
        self.0.len()
    }
}

// ---------------------------------------------------------------------
// Operation counting (Table 2's "Evaluation Statistics")
// ---------------------------------------------------------------------

/// Stripe count for [`OpCounters`]. Scoped workers are handed consecutive
/// stripe indices, so any ≤16 concurrent workers land on distinct stripes.
const COUNTER_STRIPES: usize = 16;

/// One cache-line-isolated set of operation counters. The alignment keeps
/// neighbouring stripes off each other's (prefetch-paired) cache lines so
/// per-operation `fetch_add`s from different workers never ping-pong.
#[repr(align(128))]
#[derive(Debug, Default)]
struct CounterStripe {
    inserts: AtomicU64,
    removes: AtomicU64,
    membership: AtomicU64,
    lower_bound: AtomicU64,
    upper_bound: AtomicU64,
}

/// Next round-robin stripe for threads that never pinned one.
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's stripe index; `usize::MAX` = not yet assigned.
    static STRIPE: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

/// Returns this thread's stripe index, assigned round-robin on first use.
/// Consecutive assignment (not hashing) guarantees a scope of ≤16 workers
/// gets pairwise-distinct stripes.
fn counter_stripe() -> usize {
    STRIPE.with(|s| {
        let mut v = s.get();
        if v == usize::MAX {
            v = NEXT_STRIPE.fetch_add(1, Relaxed) % COUNTER_STRIPES;
            s.set(v);
        }
        v
    })
}

/// Pins the calling thread's [`OpCounters`] stripe to `idx % 16`,
/// overriding (or preempting) the round-robin assignment.
///
/// Under sharded evaluation the scheduler pins each worker to its *home
/// shard's* index instead of a spawn-order slot: a worker's per-operation
/// `fetch_add`s then land on the stripe associated with the shard whose
/// tuples it is scanning, so stripes stay core-local when shards do.
pub fn pin_counter_stripe(idx: usize) {
    STRIPE.with(|s| s.set(idx % COUNTER_STRIPES));
}

/// Shared operation counters, aggregated across all relations of an engine.
///
/// Internally striped per thread: inner scans issue one `lower_bound`
/// count per outer tuple, and with a single counter word those relaxed
/// `fetch_add`s from every worker serialize the whole join on one
/// contended cache line (measured: a 1M-tuple parallel scan ran no faster
/// at 8 threads than at 1). Each worker increments its own stripe;
/// readers sum across stripes.
#[derive(Debug)]
pub struct OpCounters {
    stripes: [CounterStripe; COUNTER_STRIPES],
}

impl Default for OpCounters {
    fn default() -> Self {
        Self {
            stripes: std::array::from_fn(|_| CounterStripe::default()),
        }
    }
}

impl OpCounters {
    #[inline]
    fn stripe(&self) -> &CounterStripe {
        &self.stripes[counter_stripe()]
    }

    /// Counts `n` `insert` calls against the calling thread's stripe.
    #[inline]
    pub fn add_inserts(&self, n: u64) {
        self.stripe().inserts.fetch_add(n, Relaxed);
    }

    /// Counts `n` `remove` calls against the calling thread's stripe.
    #[inline]
    pub fn add_removes(&self, n: u64) {
        self.stripe().removes.fetch_add(n, Relaxed);
    }

    /// Counts `n` `contains` calls against the calling thread's stripe.
    #[inline]
    pub fn add_membership(&self, n: u64) {
        self.stripe().membership.fetch_add(n, Relaxed);
    }

    /// Counts `n` `lower_bound` probes against the calling thread's stripe.
    #[inline]
    pub fn add_lower_bound(&self, n: u64) {
        self.stripe().lower_bound.fetch_add(n, Relaxed);
    }

    /// Counts `n` `upper_bound` probes against the calling thread's stripe.
    #[inline]
    pub fn add_upper_bound(&self, n: u64) {
        self.stripe().upper_bound.fetch_add(n, Relaxed);
    }

    /// Snapshot as plain numbers: `(inserts, membership, lower, upper)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        self.stripes.iter().fold((0, 0, 0, 0), |acc, s| {
            (
                acc.0 + s.inserts.load(Relaxed),
                acc.1 + s.membership.load(Relaxed),
                acc.2 + s.lower_bound.load(Relaxed),
                acc.3 + s.upper_bound.load(Relaxed),
            )
        })
    }

    /// `remove` calls as a plain number (kept out of [`snapshot`]'s
    /// 4-tuple, whose shape Table 2 consumers rely on).
    ///
    /// [`snapshot`]: Self::snapshot
    pub fn removes_count(&self) -> u64 {
        self.stripes.iter().map(|s| s.removes.load(Relaxed)).sum()
    }

    /// Zeroes every counter. Quiescent callers only (no evaluation in
    /// flight); used by `Engine::reset_stats`.
    pub fn reset(&self) {
        for s in &self.stripes {
            s.inserts.store(0, Relaxed);
            s.removes.store(0, Relaxed);
            s.membership.store(0, Relaxed);
            s.lower_bound.store(0, Relaxed);
            s.upper_bound.store(0, Relaxed);
        }
    }
}

/// Wraps a storage backend, counting every operation into shared
/// [`OpCounters`].
pub struct CountingStorage {
    inner: Box<dyn RelationStorage>,
    counters: Arc<OpCounters>,
}

impl CountingStorage {
    /// Wraps `inner`, accumulating into `counters`.
    pub fn new(inner: Box<dyn RelationStorage>, counters: Arc<OpCounters>) -> Self {
        Self { inner, counters }
    }
}

impl RelationStorage for CountingStorage {
    fn make_ctx(&self) -> StorageCtx {
        self.inner.make_ctx()
    }

    fn insert(&self, t: &TupleBuf, ctx: &mut StorageCtx) -> bool {
        self.counters.add_inserts(1);
        self.inner.insert(t, ctx)
    }

    fn remove(&self, t: &TupleBuf, ctx: &mut StorageCtx) -> bool {
        self.counters.add_removes(1);
        self.inner.remove(t, ctx)
    }

    fn contains(&self, t: &TupleBuf, ctx: &mut StorageCtx) -> bool {
        self.counters.add_membership(1);
        self.inner.contains(t, ctx)
    }

    fn scan_prefix(&self, prefix: &[u64], ctx: &mut StorageCtx, f: &mut dyn FnMut(&TupleBuf)) {
        self.counters.add_lower_bound(1);
        // Bounded prefixes issue an explicit upper_bound probe (Figure 1);
        // empty prefixes are plain full iterations.
        if !prefix.is_empty() {
            self.counters.add_upper_bound(1);
        }
        self.inner.scan_prefix(prefix, ctx, f)
    }

    fn partition(&self, n: usize, prefix: &[u64]) -> Vec<StorageChunk> {
        // `partition` itself reads only separator keys (or materializes a
        // snapshot); the bound queries are counted when chunks are scanned.
        self.inner.partition(n, prefix)
    }

    fn scan_chunk(&self, chunk: &StorageChunk, ctx: &mut StorageCtx, f: &mut dyn FnMut(&TupleBuf)) {
        // Each ordered chunk scan starts with one lower_bound descent
        // (hinted or not); snapshot chunks touch no index structure.
        if matches!(chunk.span, ChunkSpan::Range { .. }) {
            self.counters.add_lower_bound(1);
        }
        self.inner.scan_chunk(chunk, ctx, f)
    }

    fn for_each(&self, f: &mut dyn FnMut(&TupleBuf)) {
        self.inner.for_each(f)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn hint_stats(&self, ctx: &StorageCtx) -> Option<HintStats> {
        self.inner.hint_stats(ctx)
    }

    fn clear(&mut self) -> bool {
        // Clearing is bookkeeping, not a counted tuple operation.
        self.inner.clear()
    }

    fn as_spec_btree(&self) -> Option<&BTreeSet<MAX_ARITY>> {
        self.inner.as_spec_btree()
    }

    fn as_sharded(&self) -> Option<&ShardedStorage> {
        self.inner.as_sharded()
    }

    fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    fn merge_from(&self, src: &dyn RelationStorage, workers: usize) -> u64 {
        // A fused merge attempts one insert per source tuple, whichever
        // path serves it — count them all, preserving the "insert calls"
        // semantics of the per-tuple loop it replaces.
        self.counters.add_inserts(src.len() as u64);
        self.inner.merge_from(src, workers)
    }

    fn retract_from(&self, src: &dyn RelationStorage, workers: usize) -> u64 {
        // A fused retraction attempts one remove per source tuple — count
        // them all, mirroring `merge_from`'s insert accounting.
        self.counters.add_removes(src.len() as u64);
        self.inner.retract_from(src, workers)
    }

    fn add_index(&mut self, perm: &[usize], workers: usize) -> Option<usize> {
        // Registration/backfill is bookkeeping, not a counted tuple op.
        self.inner.add_index(perm, workers)
    }

    fn index_perms(&self) -> Vec<Vec<usize>> {
        self.inner.index_perms()
    }

    fn scan_index(
        &self,
        index: usize,
        perm: &[usize],
        prefix: &[u64],
        ctx: &mut StorageCtx,
        f: &mut dyn FnMut(&TupleBuf),
    ) {
        // An index scan costs the same probes as a bounded prefix scan:
        // one lower_bound descent plus one explicit upper_bound.
        self.counters.add_lower_bound(1);
        if !prefix.is_empty() {
            self.counters.add_upper_bound(1);
        }
        self.inner.scan_index(index, perm, prefix, ctx, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(kind: StorageKind) {
        let s = kind.create();
        let mut ctx = s.make_ctx();
        assert!(s.is_empty());
        assert!(s.insert(&pad(&[1, 2]), &mut ctx));
        assert!(!s.insert(&pad(&[1, 2]), &mut ctx));
        assert!(s.insert(&pad(&[1, 3]), &mut ctx));
        assert!(s.insert(&pad(&[2, 1]), &mut ctx));
        assert!(s.contains(&pad(&[1, 2]), &mut ctx));
        assert!(!s.contains(&pad(&[9, 9]), &mut ctx));
        assert_eq!(s.len(), 3);

        // Prefix scan for leading column 1.
        let mut got = Vec::new();
        s.scan_prefix(&[1], &mut ctx, &mut |t| got.push(*t));
        got.sort_unstable();
        assert_eq!(got, vec![pad(&[1, 2]), pad(&[1, 3])], "{}", kind.label());

        let mut all = Vec::new();
        s.for_each(&mut |t| all.push(*t));
        assert_eq!(all.len(), 3);

        // Removal: present, absent, removed-then-gone, reinsert.
        assert!(s.remove(&pad(&[1, 2]), &mut ctx), "{}", kind.label());
        assert!(!s.remove(&pad(&[1, 2]), &mut ctx));
        assert!(!s.remove(&pad(&[9, 9]), &mut ctx));
        assert!(!s.contains(&pad(&[1, 2]), &mut ctx));
        assert_eq!(s.len(), 2);
        let mut after = Vec::new();
        s.scan_prefix(&[1], &mut ctx, &mut |t| after.push(*t));
        assert_eq!(after, vec![pad(&[1, 3])], "{}", kind.label());
        assert!(s.insert(&pad(&[1, 2]), &mut ctx), "reinsert after remove");
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn all_backends_conform() {
        for kind in StorageKind::ALL {
            exercise(kind);
        }
        for shards in [1usize, 2, 8] {
            exercise(StorageKind::ShardedBTree(shards));
        }
    }

    #[test]
    fn prefix_upper_handles_saturation() {
        assert_eq!(prefix_upper(&[]), None);
        assert_eq!(prefix_upper(&[3]).map(|t| t[0]), Some(4));
        assert_eq!(prefix_upper(&[u64::MAX]), None);
        // Carry into the previous word.
        let hi = prefix_upper(&[7, u64::MAX]).unwrap();
        assert_eq!(hi[0], 8);
        assert_eq!(hi[1], 0);
    }

    #[test]
    fn counting_storage_counts() {
        let counters = Arc::new(OpCounters::default());
        let s = CountingStorage::new(StorageKind::SpecBTree.create(), Arc::clone(&counters));
        let mut ctx = s.make_ctx();
        s.insert(&pad(&[1]), &mut ctx);
        s.insert(&pad(&[2]), &mut ctx);
        s.contains(&pad(&[1]), &mut ctx);
        s.scan_prefix(&[1], &mut ctx, &mut |_| {});
        let (ins, mem, lb, ub) = counters.snapshot();
        assert_eq!((ins, mem, lb, ub), (2, 1, 1, 1));
        s.remove(&pad(&[1]), &mut ctx);
        s.remove(&pad(&[1]), &mut ctx); // absent: still counted as a call
        assert_eq!(counters.removes_count(), 2);
        counters.reset();
        assert_eq!(counters.removes_count(), 0);
        assert_eq!(counters.snapshot(), (0, 0, 0, 0));
    }

    #[test]
    fn retract_from_subtracts_on_all_backend_pairs() {
        // Victim sets arrive either as a spec B-tree (the engine's Del
        // accumulator) or as any other backend; both must subtract exactly.
        for dst_kind in StorageKind::ALL {
            for src_kind in [StorageKind::SpecBTree, StorageKind::GBTreeLocked] {
                let dst = dst_kind.create();
                let mut ctx = dst.make_ctx();
                for i in 0..500u64 {
                    dst.insert(&pad(&[i, i % 7]), &mut ctx);
                }
                let src = src_kind.create();
                let mut sctx = src.make_ctx();
                // Overlap 0..300 plus 100 tuples absent from dst.
                for i in 0..300u64 {
                    src.insert(&pad(&[i, i % 7]), &mut sctx);
                }
                for i in 1_000..1_100u64 {
                    src.insert(&pad(&[i, 0]), &mut sctx);
                }
                for workers in [1usize, 4] {
                    let dst2 = dst_kind.create();
                    let mut c2 = dst2.make_ctx();
                    dst.for_each(&mut |t| {
                        dst2.insert(t, &mut c2);
                    });
                    let removed = dst2.retract_from(src.as_ref(), workers);
                    assert_eq!(
                        removed,
                        300,
                        "{} -= {} workers={workers}",
                        dst_kind.label(),
                        src_kind.label()
                    );
                    assert_eq!(dst2.len(), 200);
                    assert!(!dst2.contains(&pad(&[0, 0]), &mut c2));
                    assert!(dst2.contains(&pad(&[300, 300 % 7]), &mut c2));
                }
            }
        }
    }

    #[test]
    fn spec_btree_reports_hint_stats() {
        let s = StorageKind::SpecBTree.create();
        let mut ctx = s.make_ctx();
        for i in 0..100u64 {
            s.insert(&pad(&[0, i * 2]), &mut ctx);
        }
        for i in 0..99u64 {
            s.insert(&pad(&[0, i * 2 + 1]), &mut ctx);
        }
        let stats = s.hint_stats(&ctx).expect("spec btree keeps hints");
        assert!(stats.insert_hits > 0);
        assert!(StorageKind::RbTreeLocked
            .create()
            .hint_stats(&StorageKind::RbTreeLocked.create().make_ctx())
            .is_none());
    }

    fn chunk_scan_matches_prefix_scan(kind: StorageKind, prefix: &[u64]) {
        let s = kind.create();
        let mut ctx = s.make_ctx();
        for a in 0..8u64 {
            for b in 0..100u64 {
                s.insert(&pad(&[a, b]), &mut ctx);
            }
        }
        let mut want = Vec::new();
        s.scan_prefix(prefix, &mut ctx, &mut |t| want.push(*t));
        want.sort_unstable();
        for n in [1usize, 3, 8, 64] {
            let chunks = s.partition(n, prefix);
            let mut got = Vec::new();
            for c in &chunks {
                s.scan_chunk(c, &mut ctx, &mut |t| got.push(*t));
            }
            got.sort_unstable();
            assert_eq!(got, want, "{} n={n} prefix={prefix:?}", kind.label());
        }
    }

    #[test]
    fn partition_scan_equals_prefix_scan_on_all_backends() {
        let sharded = [1usize, 2, 8].map(StorageKind::ShardedBTree);
        for kind in StorageKind::ALL.iter().chain(&sharded).copied() {
            chunk_scan_matches_prefix_scan(kind, &[]);
            chunk_scan_matches_prefix_scan(kind, &[3]);
            chunk_scan_matches_prefix_scan(kind, &[9]); // matches nothing
        }
    }

    #[test]
    fn spec_btree_partition_emits_range_chunks() {
        let s = StorageKind::SpecBTree.create();
        let mut ctx = s.make_ctx();
        for i in 0..5_000u64 {
            s.insert(&pad(&[i / 100, i % 100]), &mut ctx);
        }
        let chunks = s.partition(8, &[]);
        assert!(chunks.len() > 1, "a deep tree should split");
        assert!(chunks
            .iter()
            .all(|c| c.shard == 0 && matches!(c.span, ChunkSpan::Range { .. })));
        // Empty relations partition to no chunks at all.
        assert!(StorageKind::SpecBTree.create().partition(8, &[]).is_empty());
    }

    #[test]
    fn fallback_partition_materializes_once_and_slices() {
        let s = StorageKind::HashSetLocked.create();
        let mut ctx = s.make_ctx();
        for i in 0..100u64 {
            s.insert(&pad(&[i]), &mut ctx);
        }
        let chunks = s.partition(4, &[]);
        assert!(!chunks.is_empty());
        let total: usize = chunks
            .iter()
            .map(|c| match &c.span {
                ChunkSpan::Materialized { start, end, .. } => end - start,
                ChunkSpan::Range { .. } => panic!("hash backend cannot emit ranges"),
            })
            .sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn sharded_partition_tags_and_groups_chunks_by_shard() {
        let s = StorageKind::ShardedBTree(4).create();
        let mut ctx = s.make_ctx();
        for i in 0..8_000u64 {
            s.insert(&pad(&[i / 100, i % 100]), &mut ctx);
        }
        assert_eq!(s.shard_count(), 4);
        let chunks = s.partition(32, &[]);
        assert!(chunks.len() > 4, "every populated shard should oversplit");
        // Chunks arrive grouped: the shard id never decreases along the
        // vector (the scheduler's home-shard runs rely on contiguity).
        let shards: Vec<usize> = chunks.iter().map(|c| c.shard).collect();
        let mut sorted = shards.clone();
        sorted.sort_unstable();
        assert_eq!(shards, sorted, "chunks must be grouped shard-by-shard");
        assert!(shards.iter().any(|&s| s > 0), "multiple shards populated");
        // A bounded prefix routes to exactly one shard.
        let bounded = s.partition(8, &[3]);
        assert!(!bounded.is_empty());
        let first = bounded[0].shard;
        assert!(bounded.iter().all(|c| c.shard == first));
        // Scanning all chunks reproduces the full contents exactly once.
        let mut got = Vec::new();
        for c in &chunks {
            s.scan_chunk(c, &mut ctx, &mut |t| got.push(*t));
        }
        assert_eq!(got.len(), 8_000);
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 8_000, "no tuple may appear in two shards");
    }

    #[test]
    fn sharded_merge_and_retract_run_shardwise() {
        for (nshards, workers) in [(4usize, 1usize), (4, 4), (8, 3)] {
            let dst = StorageKind::ShardedBTree(nshards).create();
            let src = StorageKind::ShardedBTree(nshards).create();
            let mut dctx = dst.make_ctx();
            let mut sctx = src.make_ctx();
            for i in 0..2_000u64 {
                dst.insert(&pad(&[i, 1]), &mut dctx);
            }
            // Overlap 1000..2000, fresh 2000..3000.
            for i in 1_000..3_000u64 {
                src.insert(&pad(&[i, 1]), &mut sctx);
            }
            let added = dst.merge_from(src.as_ref(), workers);
            assert_eq!(added, 1_000, "shards={nshards} workers={workers}");
            assert_eq!(dst.len(), 3_000);
            assert_eq!(src.len(), 2_000, "source untouched");

            let removed = dst.retract_from(src.as_ref(), workers);
            assert_eq!(removed, 2_000, "shards={nshards} workers={workers}");
            assert_eq!(dst.len(), 1_000);
            assert!(dst.contains(&pad(&[0, 1]), &mut dctx));
            assert!(!dst.contains(&pad(&[1_500, 1]), &mut dctx));
        }
        // Mismatched shard counts fall back to the routed per-tuple path.
        let dst = StorageKind::ShardedBTree(2).create();
        let src = StorageKind::ShardedBTree(8).create();
        let mut dctx = dst.make_ctx();
        let mut sctx = src.make_ctx();
        dst.insert(&pad(&[1]), &mut dctx);
        for i in 0..100u64 {
            src.insert(&pad(&[i]), &mut sctx);
        }
        assert_eq!(dst.merge_from(src.as_ref(), 4), 99);
        assert_eq!(dst.len(), 100);
    }

    #[test]
    fn sharded_skew_concentrates_in_one_shard() {
        // Every tuple shares the leading column, so the shard map sends
        // all of them to a single shard — the worst case the balance
        // telemetry exists to expose. Correctness must be unaffected.
        let s = StorageKind::ShardedBTree(8).create();
        let mut ctx = s.make_ctx();
        for i in 0..1_000u64 {
            s.insert(&pad(&[7, i]), &mut ctx);
        }
        let sharded = s.as_sharded().expect("sharded backend");
        let lens = sharded.shard_lens();
        assert_eq!(lens.iter().sum::<usize>(), 1_000);
        assert_eq!(lens.iter().max().copied().unwrap(), 1_000, "{lens:?}");
        let mut got = Vec::new();
        s.scan_prefix(&[7], &mut ctx, &mut |t| got.push(*t));
        assert_eq!(got.len(), 1_000);
    }

    #[test]
    fn pinned_counter_stripes_follow_home_shard() {
        let counters = Arc::new(OpCounters::default());
        let c = Arc::clone(&counters);
        std::thread::spawn(move || {
            pin_counter_stripe(3);
            c.add_inserts(5);
            // Re-pinning moves subsequent counts to the new stripe.
            pin_counter_stripe(7);
            c.add_inserts(2);
        })
        .join()
        .unwrap();
        assert_eq!(counters.snapshot().0, 7, "both stripes aggregate");
        assert_eq!(counters.stripes[3].inserts.load(Relaxed), 5);
        assert_eq!(counters.stripes[7].inserts.load(Relaxed), 2);
    }

    #[test]
    fn counting_storage_counts_chunk_scans() {
        let counters = Arc::new(OpCounters::default());
        let s = CountingStorage::new(StorageKind::SpecBTree.create(), Arc::clone(&counters));
        let mut ctx = s.make_ctx();
        for i in 0..3_000u64 {
            s.insert(&pad(&[i]), &mut ctx);
        }
        let before = counters.snapshot().2;
        let chunks = s.partition(4, &[]);
        for c in &chunks {
            s.scan_chunk(c, &mut ctx, &mut |_| {});
        }
        let after = counters.snapshot().2;
        assert_eq!(after - before, chunks.len() as u64);
    }

    #[test]
    fn clear_recycles_spec_btree_and_declines_elsewhere() {
        let mut s = StorageKind::SpecBTree.create();
        let mut ctx = s.make_ctx();
        for i in 0..500u64 {
            s.insert(&pad(&[i, i]), &mut ctx);
        }
        assert!(s.clear(), "spec btree supports cheap reset");
        assert!(s.is_empty());
        // The cleared storage is fully reusable (stale ctx hints included).
        assert!(s.insert(&pad(&[7, 7]), &mut ctx));
        assert!(s.contains(&pad(&[7, 7]), &mut ctx));
        assert_eq!(s.len(), 1);

        // The counting wrapper forwards to its inner backend.
        let counters = Arc::new(OpCounters::default());
        let mut c = CountingStorage::new(StorageKind::SpecBTree.create(), Arc::clone(&counters));
        let mut cctx = RelationStorage::make_ctx(&c);
        c.insert(&pad(&[1]), &mut cctx);
        assert!(RelationStorage::clear(&mut c));
        assert!(RelationStorage::is_empty(&c));

        // Backends without a cheap reset decline (and keep their tuples).
        let mut rb = StorageKind::RbTreeLocked.create();
        let mut rctx = rb.make_ctx();
        rb.insert(&pad(&[1]), &mut rctx);
        assert!(!rb.clear());
        assert_eq!(rb.len(), 1);
    }

    #[test]
    fn concurrent_inserts_through_trait() {
        for kind in [StorageKind::SpecBTree, StorageKind::ConcurrentHashSet] {
            let s = kind.create();
            std::thread::scope(|scope| {
                for t in 0..4u64 {
                    let s = &s;
                    scope.spawn(move || {
                        let mut ctx = s.make_ctx();
                        for i in 0..1_000 {
                            s.insert(&pad(&[t, i]), &mut ctx);
                        }
                    });
                }
            });
            assert_eq!(s.len(), 4_000, "{}", kind.label());
        }
    }
}
