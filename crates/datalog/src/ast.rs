//! Abstract syntax of the Datalog dialect.
//!
//! The dialect covers what the paper's evaluation workloads need: relation
//! declarations, facts, Horn rules with stratified negation, and input /
//! output markers. Constants are unsigned integers — production engines
//! (Soufflé included) intern symbols to dense integers before evaluation,
//! so numeric-only constants lose no generality.

use std::fmt;

/// Maximum relation arity supported by the engine (tuples are stored as
/// fixed-size padded arrays; see the `storage` module).
pub const MAX_ARITY: usize = 5;

/// Base value for interned symbol ids. Symbols and numbers share the
/// `u64` value space (Soufflé-style ordinal semantics); interned ids start
/// high enough that realistic numeric data never collides.
pub const SYMBOL_BASE: u64 = 1 << 48;

/// The declared type of a relation column — `number` or `symbol` in the
/// surface syntax. Purely descriptive at evaluation time (everything is a
/// `u64` ordinal), but used to render symbol columns back to strings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColType {
    /// Unsigned integer data.
    Number,
    /// Interned string data.
    Symbol,
}

/// An interning table mapping strings to dense `u64` ordinals
/// (`SYMBOL_BASE + index`), as production Datalog engines do before
/// evaluation.
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    ids: std::collections::HashMap<String, u64>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its ordinal (stable across calls).
    pub fn intern(&mut self, name: &str) -> u64 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = SYMBOL_BASE + self.names.len() as u64;
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    /// Resolves an ordinal back to its string, if it is an interned symbol.
    pub fn resolve(&self, id: u64) -> Option<&str> {
        id.checked_sub(SYMBOL_BASE)
            .and_then(|i| self.names.get(i as usize))
            .map(String::as_str)
    }

    /// Looks up a name without interning it.
    pub fn lookup(&self, name: &str) -> Option<u64> {
        self.ids.get(name).copied()
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no symbols are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// A term in an atom: a variable, an integer constant, or a wildcard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Term {
    /// A named variable, e.g. `X`.
    Var(String),
    /// An integer constant, e.g. `42`.
    Const(u64),
    /// The anonymous variable `_` (matches anything, binds nothing).
    Wildcard,
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
            Term::Wildcard => write!(f, "_"),
        }
    }
}

/// A relation atom: `name(t1, ..., tn)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Atom {
    /// Relation name.
    pub relation: String,
    /// Argument terms.
    pub terms: Vec<Term>,
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A body literal: an atom, possibly negated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Literal {
    /// The underlying atom.
    pub atom: Atom,
    /// True for `!atom(...)`.
    pub negated: bool,
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "!")?;
        }
        write!(f, "{}", self.atom)
    }
}

/// A comparison operator usable in rule bodies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Evaluates the comparison on concrete values.
    #[inline]
    pub fn eval(&self, lhs: u64, rhs: u64) -> bool {
        match self {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
        })
    }
}

/// A comparison constraint in a rule body, e.g. `X < Y` or `X != 3`.
/// Semantically a filter: it holds no tuples and binds no variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Constraint {
    /// Operator.
    pub op: CmpOp,
    /// Left operand (variable or constant; wildcards are rejected).
    pub lhs: Term,
    /// Right operand.
    pub rhs: Term,
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

/// A Horn rule `head :- body.`
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule {
    /// The derived atom.
    pub head: Atom,
    /// Body literals, evaluated left to right.
    pub body: Vec<Literal>,
    /// Comparison constraints (order-independent filters).
    pub constraints: Vec<Constraint>,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        for (i, l) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        for c in &self.constraints {
            write!(f, ", {c}")?;
        }
        write!(f, ".")
    }
}

/// A relation declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationDecl {
    /// Relation name.
    pub name: String,
    /// Number of columns (1 ..= [`MAX_ARITY`]).
    pub arity: usize,
    /// Column types, one per column (defaults to all `Number`).
    pub col_types: Vec<ColType>,
    /// Declared as `.input` (facts come from outside).
    pub is_input: bool,
    /// Declared as `.output` (results are of interest).
    pub is_output: bool,
}

/// A complete Datalog program.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Relation declarations, in declaration order.
    pub decls: Vec<RelationDecl>,
    /// Rules, in source order.
    pub rules: Vec<Rule>,
    /// Ground facts given in the program text: `(relation, tuple)`.
    pub facts: Vec<(String, Vec<u64>)>,
    /// Interned string constants (`"..."` literals intern at parse time,
    /// exactly as Soufflé's symbol table does).
    pub symbols: SymbolTable,
}

impl Program {
    /// Creates an empty program (build it up with the methods below).
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a relation (all columns typed `number`). Returns
    /// `&mut self` for chaining.
    pub fn declare(&mut self, name: &str, arity: usize) -> &mut Self {
        self.declare_typed(name, vec![ColType::Number; arity])
    }

    /// Declares a relation with explicit column types.
    pub fn declare_typed(&mut self, name: &str, col_types: Vec<ColType>) -> &mut Self {
        self.decls.push(RelationDecl {
            name: name.to_string(),
            arity: col_types.len(),
            col_types,
            is_input: false,
            is_output: false,
        });
        self
    }

    /// Interns a string constant, returning its ordinal (for use in facts
    /// and [`build`] terms).
    pub fn intern(&mut self, name: &str) -> u64 {
        self.symbols.intern(name)
    }

    /// Declares an input relation.
    pub fn declare_input(&mut self, name: &str, arity: usize) -> &mut Self {
        self.declare(name, arity);
        self.decls.last_mut().expect("just pushed").is_input = true;
        self
    }

    /// Declares an output relation.
    pub fn declare_output(&mut self, name: &str, arity: usize) -> &mut Self {
        self.declare(name, arity);
        self.decls.last_mut().expect("just pushed").is_output = true;
        self
    }

    /// Adds a ground fact.
    pub fn fact(&mut self, relation: &str, tuple: &[u64]) -> &mut Self {
        self.facts.push((relation.to_string(), tuple.to_vec()));
        self
    }

    /// Adds a rule.
    pub fn rule(&mut self, rule: Rule) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// Looks up a declaration by name.
    pub fn decl(&self, name: &str) -> Option<&RelationDecl> {
        self.decls.iter().find(|d| d.name == name)
    }
}

/// Shorthand constructors for building rules programmatically.
pub mod build {
    use super::{Atom, CmpOp, Constraint, Literal, Rule, Term};

    /// A variable term.
    pub fn v(name: &str) -> Term {
        Term::Var(name.to_string())
    }

    /// A constant term.
    pub fn c(value: u64) -> Term {
        Term::Const(value)
    }

    /// A wildcard term.
    pub fn w() -> Term {
        Term::Wildcard
    }

    /// An atom.
    pub fn atom(relation: &str, terms: Vec<Term>) -> Atom {
        Atom {
            relation: relation.to_string(),
            terms,
        }
    }

    /// A positive literal.
    pub fn pos(relation: &str, terms: Vec<Term>) -> Literal {
        Literal {
            atom: atom(relation, terms),
            negated: false,
        }
    }

    /// A negated literal.
    pub fn neg(relation: &str, terms: Vec<Term>) -> Literal {
        Literal {
            atom: atom(relation, terms),
            negated: true,
        }
    }

    /// A rule `head :- body.`
    pub fn rule(head: Atom, body: Vec<Literal>) -> Rule {
        Rule {
            head,
            body,
            constraints: Vec::new(),
        }
    }

    /// A rule with comparison constraints.
    pub fn rule_where(head: Atom, body: Vec<Literal>, constraints: Vec<Constraint>) -> Rule {
        Rule {
            head,
            body,
            constraints,
        }
    }

    /// A comparison constraint.
    pub fn cmp(lhs: Term, op: CmpOp, rhs: Term) -> Constraint {
        Constraint { op, lhs, rhs }
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;

    #[test]
    fn display_forms() {
        let r = rule(
            atom("path", vec![v("X"), v("Z")]),
            vec![
                pos("path", vec![v("X"), v("Y")]),
                pos("edge", vec![v("Y"), v("Z")]),
                neg("blocked", vec![v("Z"), c(0)]),
            ],
        );
        assert_eq!(
            r.to_string(),
            "path(X, Z) :- path(X, Y), edge(Y, Z), !blocked(Z, 0)."
        );
        assert_eq!(w().to_string(), "_");
    }

    #[test]
    fn program_builder() {
        let mut p = Program::new();
        p.declare_input("edge", 2)
            .declare_output("path", 2)
            .fact("edge", &[1, 2]);
        assert!(p.decl("edge").unwrap().is_input);
        assert!(p.decl("path").unwrap().is_output);
        assert_eq!(p.decl("nope"), None);
        assert_eq!(p.facts.len(), 1);
    }
}
