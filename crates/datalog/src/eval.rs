//! Rule compilation and parallel semi-naive evaluation.
//!
//! Each rule is compiled into nested-loop-join *plans* mirroring the code
//! Soufflé synthesizes (paper Figure 1): body literals become steps that
//! either **scan** a relation with a bound leading prefix (a
//! `lower_bound`/`upper_bound` range query) or **check** a fully bound
//! tuple (a membership test). For recursive rules one plan *version* per
//! recursive body literal is generated, with that literal reading the
//! delta relation and hoisted to the outermost loop — the standard
//! semi-naive transformation.
//!
//! Parallel evaluation follows the paper's strategy: the outermost loop of
//! each plan is *chunk-driven* — the storage backend splits its own key
//! space into many more chunks than workers
//! ([`RelationStorage::partition`]), and workers claim chunks off a shared
//! atomic cursor, walking each chunk directly in the tree
//! ([`RelationStorage::scan_chunk`]) with no intermediate tuple buffer.
//! Every worker owns private storage contexts (operation hints) and
//! inserts into the shared `new` relation through the concurrent storage
//! API. Reads (scans over stable relations) and writes (inserts into
//! `new`) never target the same structure — the two-phase property (§2)
//! the B-tree's synchronization is specialized for.

use crate::ast::{CmpOp, Rule, Term, MAX_ARITY};
use crate::storage::{
    pin_counter_stripe, shard_of, RelationStorage, StorageChunk, StorageCtx, TupleBuf,
};
use specbtree::HintStats;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};

/// Oversplit factor: each plan's outer scan is partitioned into
/// `CHUNKS_PER_WORKER ×` the worker count so the shared cursor can smooth
/// out skew (a worker stuck on a dense chunk simply claims fewer).
pub const CHUNKS_PER_WORKER: usize = 8;

/// How the outermost loop of each plan is distributed across workers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ParallelStrategy {
    /// Partition the storage's key space into many chunks and let workers
    /// claim them dynamically off a shared cursor (the default).
    #[default]
    ChunkStealing,
    /// The pre-chunking behavior: copy the outer scan into a `Vec` and
    /// split it statically into one slice per worker. Kept for A/B
    /// benchmarking (`bench-suite`'s `sched` binary).
    MaterializeSplit,
}

/// Per-worker scheduler counters, accumulated across plans and iterations
/// of one engine run.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerStats {
    /// Outer-loop chunks this worker claimed.
    pub chunks_claimed: u64,
    /// Chunks claimed outside the worker's home shard (sharded storage
    /// only: work stealing crossed a shard boundary; 0 when the backend
    /// has a single shard).
    pub chunks_stolen: u64,
    /// Tuples the worker's scans produced (outer chunks plus inner range
    /// scans).
    pub tuples_scanned: u64,
    /// Tuples the worker inserted into `new` relations.
    pub tuples_emitted: u64,
    /// Inner (non-outermost) scans served by a bound prefix or a
    /// secondary index — a range query rather than a full sweep.
    pub inner_scans_indexed: u64,
    /// Inner scans that fell through to an unindexed full sweep of the
    /// relation (no bound prefix, no secondary index).
    pub inner_scans_full: u64,
}

impl WorkerStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &WorkerStats) {
        self.chunks_claimed += other.chunks_claimed;
        self.chunks_stolen += other.chunks_stolen;
        self.tuples_scanned += other.tuples_scanned;
        self.tuples_emitted += other.tuples_emitted;
        self.inner_scans_indexed += other.inner_scans_indexed;
        self.inner_scans_full += other.inner_scans_full;
    }
}

/// A compiled term: a constant or a slot in the variable environment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Slot {
    Const(u64),
    Var(usize),
}

impl Slot {
    #[inline]
    fn value(&self, env: &[u64]) -> u64 {
        match self {
            Slot::Const(c) => *c,
            Slot::Var(v) => env[*v],
        }
    }
}

/// A secondary index chosen for a scan step: the registered index id on
/// the scanned relation plus the column permutation it is keyed by. The
/// permutation is carried in the plan (rather than looked up at run time)
/// so workers can translate prefix values and result tuples without
/// touching shared catalog state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct IndexSel {
    pub id: usize,
    pub perm: Vec<usize>,
}

/// One step of a compiled plan.
#[derive(Clone, Debug)]
pub(crate) enum Step {
    /// Scan a relation with the leading `prefix` bound; `checks` are
    /// equality constraints on later columns; `binds` assign columns to
    /// fresh variables. When `index` is set, the prefix is in the index's
    /// *permuted* column order and the scan routes through
    /// [`RelationStorage::scan_index`].
    Scan {
        rel: usize,
        delta: bool,
        prefix: Vec<Slot>,
        checks: Vec<(usize, Slot)>,
        binds: Vec<(usize, usize)>,
        index: Option<IndexSel>,
    },
    /// Membership test of a fully bound tuple (possibly negated).
    Check {
        rel: usize,
        delta: bool,
        terms: Vec<Slot>,
        negated: bool,
    },
    /// A comparison constraint over bound slots (e.g. `v0 < v2`).
    Filter { op: CmpOp, lhs: Slot, rhs: Slot },
}

/// A compiled plan version of one rule.
#[derive(Clone, Debug)]
pub(crate) struct Plan {
    /// Unique id across all plans of a run (assigned by the engine); used
    /// to give every operation site its own hint context, as Soufflé's
    /// generated code does.
    pub id: usize,
    pub head_rel: usize,
    pub head_slots: Vec<Slot>,
    pub steps: Vec<Step>,
    pub nvars: usize,
}

/// Compiles all semi-naive versions of `rule`.
///
/// `stratum_rels` are the relation ids defined in the current stratum; one
/// version is emitted per body occurrence of a stratum relation (that
/// occurrence reads the delta and becomes the outermost loop). A rule
/// without stratum-relation occurrences yields a single non-delta version.
pub(crate) fn compile_versions(
    rule: &Rule,
    rel_ids: &HashMap<String, usize>,
    stratum_rels: &[usize],
) -> Vec<Plan> {
    let recursive_positions: Vec<usize> = rule
        .body
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.negated && stratum_rels.contains(&rel_ids[&l.atom.relation]))
        .map(|(i, _)| i)
        .collect();

    if recursive_positions.is_empty() {
        return vec![compile_one(rule, rel_ids, None)];
    }
    recursive_positions
        .iter()
        .map(|&p| compile_one(rule, rel_ids, Some(p)))
        .collect()
}

/// Compiles one version; `delta_pos` marks the body literal that reads the
/// delta relation and is hoisted to the front. Exposed to the engine so the
/// retraction machinery can pick delta positions itself (its synthetic
/// rules carry appended/prepended literals that must never drive a delta).
pub(crate) fn compile_one(
    rule: &Rule,
    rel_ids: &HashMap<String, usize>,
    delta_pos: Option<usize>,
) -> Plan {
    compile_one_at(rule, rel_ids, delta_pos, true)
}

/// [`compile_one`] with an explicit hoisting choice. `hoist: false` leaves
/// the delta literal at its source position: when hoisting would strand a
/// later literal without any bound prefix, evaluating the body in source
/// order and probing the delta where it sits can be cheaper — the full
/// scan becomes the outermost loop and runs once, chunked across workers.
/// With the planner enabled this fallback rarely fires: stranded scans are
/// usually rescued first by cost-based reordering and then by a secondary
/// index covering the bound columns ([`crate::planner::assign_indexes`]),
/// and [`has_unprefixed_inner_scan`] only reports scans neither could fix.
pub(crate) fn compile_one_at(
    rule: &Rule,
    rel_ids: &HashMap<String, usize>,
    delta_pos: Option<usize>,
    hoist: bool,
) -> Plan {
    // Literal evaluation order: delta literal first, others in source order.
    let mut order: Vec<usize> = (0..rule.body.len()).collect();
    if let (Some(p), true) = (delta_pos, hoist) {
        order.retain(|&i| i != p);
        order.insert(0, p);
    }
    compile_ordered(rule, rel_ids, delta_pos, &order)
}

/// Compiles one version with a fully explicit literal evaluation order
/// (`order[0]` becomes the outermost loop). The cost-based planner
/// computes orders from relation cardinalities and calls this directly;
/// [`compile_one_at`] is the legacy source-order wrapper.
pub(crate) fn compile_ordered(
    rule: &Rule,
    rel_ids: &HashMap<String, usize>,
    delta_pos: Option<usize>,
    order: &[usize],
) -> Plan {
    debug_assert_eq!(order.len(), rule.body.len());
    let mut var_ids: HashMap<String, usize> = HashMap::new();
    let mut bound: Vec<bool> = Vec::new();
    fn var_of(var_ids: &mut HashMap<String, usize>, bound: &mut Vec<bool>, name: &str) -> usize {
        if let Some(&id) = var_ids.get(name) {
            id
        } else {
            let id = bound.len();
            var_ids.insert(name.to_string(), id);
            bound.push(false);
            id
        }
    }

    let mut steps = Vec::with_capacity(rule.body.len());
    for &li in order {
        let lit = &rule.body[li];
        let rel = rel_ids[&lit.atom.relation];
        let delta = delta_pos == Some(li);

        // Fully bound (or negated, which safety guarantees is fully bound)?
        let fully_bound = lit.atom.terms.iter().all(|t| match t {
            Term::Const(_) => true,
            Term::Var(v) => var_ids
                .get(v.as_str())
                .map(|&id| bound[id])
                .unwrap_or(false),
            Term::Wildcard => false,
        });
        if fully_bound || lit.negated {
            let terms: Vec<Slot> = lit
                .atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(c) => Slot::Const(*c),
                    Term::Var(v) => Slot::Var(var_of(&mut var_ids, &mut bound, v)),
                    Term::Wildcard => unreachable!("wildcards are never fully bound"),
                })
                .collect();
            steps.push(Step::Check {
                rel,
                delta,
                terms,
                negated: lit.negated,
            });
            continue;
        }

        // Scan: longest bound prefix, then checks/binds column by column.
        let mut prefix = Vec::new();
        let mut checks = Vec::new();
        let mut binds = Vec::new();
        let mut in_prefix = true;
        for (col, t) in lit.atom.terms.iter().enumerate() {
            let slot_if_bound = match t {
                Term::Const(c) => Some(Slot::Const(*c)),
                Term::Var(v) => {
                    let id = var_of(&mut var_ids, &mut bound, v);
                    if bound[id] {
                        Some(Slot::Var(id))
                    } else {
                        None
                    }
                }
                Term::Wildcard => None,
            };
            match slot_if_bound {
                Some(slot) if in_prefix => prefix.push(slot),
                Some(slot) => checks.push((col, slot)),
                None => {
                    in_prefix = false;
                    match t {
                        Term::Var(v) => {
                            let id = var_of(&mut var_ids, &mut bound, v);
                            binds.push((col, id));
                            bound[id] = true; // later occurrences become checks
                        }
                        Term::Wildcard => {}
                        Term::Const(_) => unreachable!(),
                    }
                }
            }
        }
        steps.push(Step::Scan {
            rel,
            delta,
            prefix,
            checks,
            binds,
            index: None,
        });
    }

    // Comparison constraints become filter steps placed immediately after
    // the earliest step at which both operands are bound (pruning the join
    // as early as possible).
    {
        // Which step first binds each variable.
        let mut bound_at = vec![0usize; bound.len()];
        for (si, step) in steps.iter().enumerate() {
            if let Step::Scan { binds, .. } = step {
                for (_, v) in binds {
                    bound_at[*v] = bound_at[*v].max(si + 1).max(si + 1);
                    // (vars are bound exactly once; the max keeps this
                    //  robust if that ever changes)
                }
            }
        }
        let mut filters: Vec<(usize, Step)> = Vec::new();
        for c in &rule.constraints {
            let slot_and_pos = |t: &Term| -> (Slot, usize) {
                match t {
                    Term::Const(v) => (Slot::Const(*v), 0),
                    Term::Var(name) => {
                        let id = var_ids[name.as_str()];
                        (Slot::Var(id), bound_at[id])
                    }
                    Term::Wildcard => unreachable!("checked during stratification"),
                }
            };
            let (lhs, lpos) = slot_and_pos(&c.lhs);
            let (rhs, rpos) = slot_and_pos(&c.rhs);
            filters.push((lpos.max(rpos), Step::Filter { op: c.op, lhs, rhs }));
        }
        // Insert from the back so earlier positions stay valid.
        filters.sort_by_key(|(pos, _)| std::cmp::Reverse(*pos));
        for (pos, f) in filters {
            steps.insert(pos, f);
        }
    }

    let head_slots: Vec<Slot> = rule
        .head
        .terms
        .iter()
        .map(|t| match t {
            Term::Const(c) => Slot::Const(*c),
            Term::Var(v) => Slot::Var(var_ids[v.as_str()]),
            Term::Wildcard => unreachable!("checked during stratification"),
        })
        .collect();

    Plan {
        id: 0, // assigned by the engine
        head_rel: rel_ids[&rule.head.relation],
        head_slots,
        steps,
        nvars: bound.len(),
    }
}

/// Whether any non-outermost step is a scan with no bound prefix *and* no
/// secondary index — an unindexed full scan re-run once per outer tuple.
/// Such plans are only worth keeping when the outer loop is known to be
/// tiny; the retraction planner uses this to decide between delta-hoisted
/// and source-order versions of its synthetic rules (checked *after*
/// index assignment, so an index-served reverse join no longer triggers
/// the fallback).
pub(crate) fn has_unprefixed_inner_scan(plan: &Plan) -> bool {
    plan.steps.iter().skip(1).any(
        |s| matches!(s, Step::Scan { prefix, index, .. } if prefix.is_empty() && index.is_none()),
    )
}

/// The relation id whose delta the plan reads, if any. Evaluating a plan
/// whose delta source is empty is a no-op; callers skip it outright, which
/// matters for non-hoisted versions whose *outer* scan is a full relation.
pub(crate) fn plan_delta_rel(plan: &Plan) -> Option<usize> {
    plan.steps.iter().find_map(|s| match s {
        Step::Scan {
            rel, delta: true, ..
        }
        | Step::Check {
            rel, delta: true, ..
        } => Some(*rel),
        _ => None,
    })
}

impl Plan {
    /// Renders the plan as a one-line pipeline description for `EXPLAIN`
    /// output; `names` maps relation ids to names.
    pub(crate) fn describe(&self, names: &[&str]) -> String {
        let slot = |s: &Slot| match s {
            Slot::Const(c) => c.to_string(),
            Slot::Var(v) => format!("v{v}"),
        };
        let mut parts = Vec::new();
        for step in &self.steps {
            match step {
                Step::Scan {
                    rel,
                    delta,
                    prefix,
                    checks,
                    binds,
                    index,
                } => {
                    let src = if *delta {
                        format!("Δ{}", names[*rel])
                    } else {
                        names[*rel].to_string()
                    };
                    let mut detail = Vec::new();
                    if let Some(sel) = index {
                        detail.push(format!(
                            "index=[{}]",
                            sel.perm
                                .iter()
                                .map(|c| c.to_string())
                                .collect::<Vec<_>>()
                                .join(",")
                        ));
                    }
                    if !prefix.is_empty() {
                        detail.push(format!(
                            "prefix=({})",
                            prefix.iter().map(slot).collect::<Vec<_>>().join(",")
                        ));
                    }
                    if !checks.is_empty() {
                        detail.push(format!(
                            "check=({})",
                            checks
                                .iter()
                                .map(|(c, s)| format!("#{c}={}", slot(s)))
                                .collect::<Vec<_>>()
                                .join(",")
                        ));
                    }
                    if !binds.is_empty() {
                        detail.push(format!(
                            "bind=({})",
                            binds
                                .iter()
                                .map(|(c, v)| format!("#{c}→v{v}"))
                                .collect::<Vec<_>>()
                                .join(",")
                        ));
                    }
                    let kind = if prefix.is_empty() && index.is_none() {
                        "scan"
                    } else {
                        "range"
                    };
                    parts.push(format!("{kind} {src} {}", detail.join(" ")));
                }
                Step::Check {
                    rel,
                    delta,
                    terms,
                    negated,
                } => {
                    let src = if *delta {
                        format!("Δ{}", names[*rel])
                    } else {
                        names[*rel].to_string()
                    };
                    let neg = if *negated { "!" } else { "" };
                    parts.push(format!(
                        "probe {neg}{src}({})",
                        terms.iter().map(slot).collect::<Vec<_>>().join(",")
                    ));
                }
                Step::Filter { op, lhs, rhs } => {
                    parts.push(format!("filter {} {op} {}", slot(lhs), slot(rhs)));
                }
            }
        }
        parts.push(format!(
            "emit {}({})",
            names[self.head_rel],
            self.head_slots
                .iter()
                .map(slot)
                .collect::<Vec<_>>()
                .join(",")
        ));
        parts.join(" ⋈ ")
    }
}

/// Resolves `delta` flags to concrete storages for one evaluation round.
///
/// `full` is a slice of borrowed storages (not owned boxes) so callers can
/// splice extra *pseudo relations* past the declared ids — the retraction
/// engine maps relation id `nrels + r` to the deletion accumulator of
/// relation `r` and compiles plans against the extended id space.
pub(crate) struct StorageEnv<'a> {
    /// Full contents of every relation (indexed by relation id).
    pub full: &'a [&'a dyn RelationStorage],
    /// Delta relations of the current stratum (relation id → storage).
    pub delta: &'a HashMap<usize, Box<dyn RelationStorage>>,
    /// The `new` relations tuples are derived into.
    pub new: &'a HashMap<usize, Box<dyn RelationStorage>>,
}

impl<'a> StorageEnv<'a> {
    fn source(&self, rel: usize, delta: bool) -> &'a dyn RelationStorage {
        if delta {
            self.delta[&rel].as_ref()
        } else {
            self.full[rel]
        }
    }
}

/// Per-thread contexts for every storage a plan touches, plus hint-stat
/// aggregation on drop-out.
///
/// Contexts are keyed by *operation site* in addition to the relation and
/// role: distinct scan/probe sites have distinct access streams, and
/// sharing one hint between them makes each evict the other's cached leaf
/// (Soufflé likewise creates one operation context per call site in its
/// generated code).
pub(crate) struct CtxSet {
    /// Context per (relation id, role, site) where role 0 = full,
    /// 1 = delta, 2 = new.
    ctxs: HashMap<(usize, u8, usize), StorageCtx>,
}

impl CtxSet {
    pub(crate) fn new() -> Self {
        Self {
            ctxs: HashMap::new(),
        }
    }

    pub(crate) fn ctx(
        &mut self,
        storage: &dyn RelationStorage,
        rel: usize,
        role: u8,
        site: usize,
    ) -> &mut StorageCtx {
        self.ctxs
            .entry((rel, role, site))
            .or_insert_with(|| storage.make_ctx())
    }

    /// Removes the context for a site so it can be used while the rest of
    /// the set is borrowed elsewhere (the outer chunk scan holds its
    /// context across deeper steps that need other contexts). Pair with
    /// [`put_ctx`](Self::put_ctx) to preserve hint locality.
    pub(crate) fn take_ctx(
        &mut self,
        storage: &dyn RelationStorage,
        rel: usize,
        role: u8,
        site: usize,
    ) -> StorageCtx {
        self.ctxs
            .remove(&(rel, role, site))
            .unwrap_or_else(|| storage.make_ctx())
    }

    /// Returns a context taken with [`take_ctx`](Self::take_ctx).
    pub(crate) fn put_ctx(&mut self, rel: usize, role: u8, site: usize, ctx: StorageCtx) {
        self.ctxs.insert((rel, role, site), ctx);
    }

    /// Sums hint statistics over all contexts. The full relations serve as
    /// the interpreter for every role — all roles share one storage kind,
    /// and reading a context's statistics only inspects the context — so
    /// stats survive the per-iteration replacement of delta/new relations.
    pub(crate) fn hint_stats(&self, full: &[Box<dyn RelationStorage>]) -> HintStats {
        let mut total = HintStats::default();
        for (&(rel, _role, _site), ctx) in &self.ctxs {
            if let Some(s) = full[rel].hint_stats(ctx) {
                total.merge(&s);
            }
        }
        total
    }
}

/// Evaluates one plan over `env`, deriving tuples into `env.new`.
///
/// `pools` are persistent per-worker context sets (operation hints): they
/// live across rules and fixpoint iterations, exactly like the paper's
/// thread-local hints. Contexts created for a previous iteration's delta
/// relation rebind automatically through the hint branding when the delta
/// is replaced.
pub(crate) fn eval_plan(
    plan: &Plan,
    env: &StorageEnv<'_>,
    pools: &mut [CtxSet],
    stats: &mut [WorkerStats],
    strategy: ParallelStrategy,
) {
    debug_assert_eq!(pools.len(), stats.len());
    if plan.steps.is_empty() || !matches!(plan.steps.first(), Some(Step::Scan { .. })) {
        // Degenerate plan (starts with a check): evaluate sequentially.
        let mut evaluator = Evaluator {
            plan,
            env,
            ctxs: &mut pools[0],
            stats: &mut stats[0],
        };
        let mut vars = vec![0u64; plan.nvars];
        evaluator.run_from(0, &mut vars);
        return;
    }
    let Some(Step::Scan {
        rel, delta, prefix, ..
    }) = plan.steps.first()
    else {
        unreachable!("scan-headed checked above")
    };
    debug_assert!(
        prefix.iter().all(|s| matches!(s, Slot::Const(_))),
        "outermost prefix can only contain constants"
    );
    let consts: Vec<u64> = prefix.iter().map(|s| s.value(&[])).collect();
    let (rel, delta) = (*rel, *delta);
    let storage = env.source(rel, delta);

    match strategy {
        ParallelStrategy::ChunkStealing => {
            let workers = pools.len().max(1);
            let chunks = storage.partition(workers * CHUNKS_PER_WORKER, &consts);
            if chunks.is_empty() {
                return;
            }
            // Chunks arrive grouped by shard id (one group for unsharded
            // backends). Each group gets its own claim cursor; a worker
            // drains its home group first and only then steals from the
            // others, so under sharded storage a worker's scans stay
            // inside the shard whose tree (and arena) it owns.
            let groups = shard_groups(&chunks);
            let cursors: Vec<AtomicUsize> =
                groups.iter().map(|g| AtomicUsize::new(g.start)).collect();
            if workers == 1 || chunks.len() == 1 {
                // Nothing to distribute: run inline, skipping the spawn
                // cost (it recurs once per plan per fixpoint iteration).
                run_worker(
                    plan,
                    env,
                    storage,
                    rel,
                    delta,
                    &chunks,
                    &groups,
                    &cursors,
                    0,
                    &mut pools[0],
                    &mut stats[0],
                );
                return;
            }
            // Never spawn more workers than there are chunks to claim —
            // surplus workers would only pay the spawn cost and exit.
            let active = workers.min(chunks.len());
            std::thread::scope(|s| {
                for (w, (ctxs, wstats)) in pools
                    .iter_mut()
                    .zip(stats.iter_mut())
                    .take(active)
                    .enumerate()
                {
                    let (cursors, chunks, groups) = (&cursors, &chunks, &groups);
                    s.spawn(move || {
                        run_worker(
                            plan, env, storage, rel, delta, chunks, groups, cursors, w, ctxs,
                            wstats,
                        );
                    });
                }
            });
        }
        ParallelStrategy::MaterializeSplit => {
            // Pre-chunking scheduler: copy the whole outer scan, then hand
            // each worker one static slice.
            let mut ctx = storage.make_ctx();
            let mut outer: Vec<TupleBuf> = Vec::new();
            storage.scan_prefix(&consts, &mut ctx, &mut |t| outer.push(*t));
            if outer.is_empty() {
                return;
            }
            let threads = pools.len().max(1).min(outer.len());
            let chunk_size = outer.len().div_ceil(threads);
            let chunks: Vec<&[TupleBuf]> = outer.chunks(chunk_size).collect();

            std::thread::scope(|s| {
                for ((chunk, ctxs), wstats) in chunks
                    .into_iter()
                    .zip(pools.iter_mut())
                    .zip(stats.iter_mut())
                {
                    s.spawn(move || {
                        let mut evaluator = Evaluator {
                            plan,
                            env,
                            ctxs,
                            stats: wstats,
                        };
                        evaluator.stats.chunks_claimed += 1;
                        evaluator.stats.tuples_scanned += chunk.len() as u64;
                        let mut vars = vec![0u64; plan.nvars];
                        for t in chunk {
                            evaluator.seed_and_run(t, &mut vars);
                        }
                    });
                }
            });
        }
    }
}

/// Splits a shard-grouped chunk vector into per-shard index ranges.
/// `partition` contracts to emit chunks grouped shard-by-shard, so one
/// boundary scan suffices; unsharded backends yield a single group.
fn shard_groups(chunks: &[StorageChunk]) -> Vec<Range<usize>> {
    let mut groups: Vec<Range<usize>> = Vec::new();
    let mut start = 0usize;
    for (i, c) in chunks.iter().enumerate().skip(1) {
        if c.shard != chunks[start].shard {
            groups.push(start..i);
            start = i;
        }
    }
    groups.push(start..chunks.len());
    groups
}

/// One worker's claim loop: drain the home shard's chunk group off its
/// shared cursor, then steal from the other groups in rotation (home+1,
/// home+2, …) until every group is exhausted. The outer scan's context is
/// taken out of the `CtxSet` for the whole loop (deeper steps borrow the
/// set for their own contexts) and restored afterwards so its hints stay
/// warm across plans and iterations.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    plan: &Plan,
    env: &StorageEnv<'_>,
    storage: &dyn RelationStorage,
    rel: usize,
    delta: bool,
    chunks: &[StorageChunk],
    groups: &[Range<usize>],
    cursors: &[AtomicUsize],
    widx: usize,
    ctxs: &mut CtxSet,
    stats: &mut WorkerStats,
) {
    let ngroups = groups.len();
    let home = widx % ngroups;
    // Counter stripes follow the home shard under sharded evaluation
    // (stripe = the shard whose tree this worker's operations hit), and
    // the worker index otherwise (pairwise distinct for ≤16 workers,
    // like the old round-robin but stable across plans).
    if ngroups > 1 {
        pin_counter_stripe(chunks[groups[home].start].shard);
    } else {
        pin_counter_stripe(widx);
    }
    let sharded = ngroups > 1;
    let role = u8::from(delta);
    let outer_site = plan.id << 8; // step index 0
    let mut outer_ctx = ctxs.take_ctx(storage, rel, role, outer_site);
    let mut evaluator = Evaluator {
        plan,
        env,
        ctxs,
        stats,
    };
    let mut vars = vec![0u64; plan.nvars];
    for offset in 0..ngroups {
        let g = (home + offset) % ngroups;
        let stolen = offset > 0;
        loop {
            let i = cursors[g].fetch_add(1, Relaxed);
            if i >= groups[g].end {
                break;
            }
            evaluator.stats.chunks_claimed += 1;
            if stolen {
                evaluator.stats.chunks_stolen += 1;
                telemetry::count(telemetry::Counter::EvalShardSteals);
            }
            let chunk = &chunks[i];
            let chunk_timer = telemetry::start_timer();
            let _shard_span = sharded.then(|| telemetry::span("eval.shard", chunk.shard as u64));
            let _span = telemetry::span("eval.chunk", i as u64);
            storage.scan_chunk(chunk, &mut outer_ctx, &mut |t| {
                evaluator.stats.tuples_scanned += 1;
                evaluator.seed_and_run(t, &mut vars);
            });
            chunk_timer.observe(telemetry::Hist::EvalChunkNanos);
        }
    }
    evaluator.ctxs.put_ctx(rel, role, outer_site, outer_ctx);
}

struct Evaluator<'p, 'e, 'c> {
    plan: &'p Plan,
    env: &'e StorageEnv<'e>,
    ctxs: &'c mut CtxSet,
    stats: &'c mut WorkerStats,
}

impl Evaluator<'_, '_, '_> {
    /// Applies the outermost scan's checks/binds to a pre-materialized
    /// tuple, then runs the remaining steps.
    fn seed_and_run(&mut self, t: &TupleBuf, vars: &mut [u64]) {
        let Step::Scan { checks, binds, .. } = &self.plan.steps[0] else {
            unreachable!("seed_and_run only used for scan-headed plans")
        };
        // Binds first: a check may reference a variable bound by an earlier
        // column of this very atom (repeated variables, e.g. `e(X, X)`).
        // Binds and checks never target the same variable, so this order is
        // always safe.
        for (col, var) in binds {
            vars[*var] = t[*col];
        }
        for (col, slot) in checks {
            if t[*col] != slot.value(vars) {
                return;
            }
        }
        self.run_from(1, vars);
    }

    fn run_from(&mut self, si: usize, vars: &mut [u64]) {
        if si == self.plan.steps.len() {
            self.emit(vars);
            return;
        }
        match &self.plan.steps[si] {
            Step::Filter { op, lhs, rhs } => {
                if op.eval(lhs.value(vars), rhs.value(vars)) {
                    self.run_from(si + 1, vars);
                }
            }
            Step::Check {
                rel,
                delta,
                terms,
                negated,
            } => {
                let mut t = [0u64; MAX_ARITY];
                for (i, slot) in terms.iter().enumerate() {
                    t[i] = slot.value(vars);
                }
                let storage = self.env.source(*rel, *delta);
                let role = u8::from(*delta);
                let site = (self.plan.id << 8) | si;
                let ctx = self.ctxs.ctx(storage, *rel, role, site);
                let present = storage.contains(&t, ctx);
                if present != *negated {
                    self.run_from(si + 1, vars);
                }
            }
            Step::Scan {
                rel,
                delta,
                prefix,
                checks,
                binds,
                index,
            } => {
                let consts: Vec<u64> = prefix.iter().map(|s| s.value(vars)).collect();
                let storage = self.env.source(*rel, *delta);
                let role = u8::from(*delta);
                if index.is_some() || !prefix.is_empty() {
                    self.stats.inner_scans_indexed += 1;
                } else {
                    self.stats.inner_scans_full += 1;
                }
                // Materialize matches first: the scan holds the storage
                // context mutably, and deeper steps need other contexts.
                let mut matches: Vec<TupleBuf> = Vec::new();
                {
                    let site = (self.plan.id << 8) | si;
                    let ctx = self.ctxs.ctx(storage, *rel, role, site);
                    match index {
                        Some(sel) => {
                            storage.scan_index(sel.id, &sel.perm, &consts, ctx, &mut |t| {
                                matches.push(*t);
                            });
                        }
                        None => {
                            storage.scan_prefix(&consts, ctx, &mut |t| {
                                matches.push(*t);
                            });
                        }
                    }
                }
                self.stats.tuples_scanned += matches.len() as u64;
                'tuples: for t in &matches {
                    // Binds before checks (see `seed_and_run`).
                    for (col, var) in binds {
                        vars[*var] = t[*col];
                    }
                    for (col, slot) in checks {
                        if t[*col] != slot.value(vars) {
                            continue 'tuples;
                        }
                    }
                    self.run_from(si + 1, vars);
                }
            }
        }
    }

    /// Emits the head tuple: the Figure 1 pattern — check the full
    /// relation, insert into `new` when unseen.
    fn emit(&mut self, vars: &[u64]) {
        let mut t = [0u64; MAX_ARITY];
        for (i, slot) in self.plan.head_slots.iter().enumerate() {
            t[i] = slot.value(vars);
        }
        let site = (self.plan.id << 8) | 0xFF;
        let full = self.env.full[self.plan.head_rel];
        let known = {
            let ctx = self.ctxs.ctx(full, self.plan.head_rel, 0, site);
            full.contains(&t, ctx)
        };
        if !known {
            let new = self.env.new[&self.plan.head_rel].as_ref();
            let ctx = self.ctxs.ctx(new, self.plan.head_rel, 2, site);
            if new.insert(&t, ctx) {
                self.stats.tuples_emitted += 1;
            }
        }
    }
}

/// Merges `new` into `full` (Figure 1 line 17), returning how many tuples
/// were actually added.
///
/// Duplicate detection is fused into the merge itself: workers report how
/// many of their inserts were genuinely new, so no second counting pass
/// over `full` is needed. Structure-aware backends (the specialized B-tree)
/// partition the source by the target's separators and merge chunks in
/// parallel; everything else falls back to a sequential tuple-at-a-time
/// merge inside [`RelationStorage::merge_from`].
pub(crate) fn merge_new(
    full: &dyn RelationStorage,
    new: &dyn RelationStorage,
    workers: usize,
) -> u64 {
    full.merge_from(new, workers.max(1))
}

/// Copies every tuple of `src` into a [`TupleBuf`] vector.
pub(crate) fn materialize(src: &dyn RelationStorage) -> Vec<TupleBuf> {
    let mut out = Vec::with_capacity(src.len());
    src.for_each(&mut |t| out.push(*t));
    out
}

/// Below this many tuples a parallel [`fill`] is not worth the thread
/// spawn overhead.
const PAR_FILL_MIN: usize = 4096;

/// Seeds a storage with tuples (used for delta initialization).
///
/// Large inputs are split and inserted from `workers` scoped threads;
/// every [`RelationStorage`] backend is internally synchronized (insert
/// takes `&self`), so concurrent seeding is safe for all of them.
///
/// A sharded destination gets the split *by the shard map* instead of by
/// contiguous slices: tuples are pre-bucketed with [`shard_of`] and each
/// worker inserts whole buckets, so no two workers ever write the same
/// shard's tree — the fill becomes contention-free by construction, like
/// the shard-parallel merge.
pub(crate) fn fill(dst: &dyn RelationStorage, tuples: &[TupleBuf], workers: usize) {
    if workers <= 1 || tuples.len() < PAR_FILL_MIN {
        let mut ctx = dst.make_ctx();
        for t in tuples {
            dst.insert(t, &mut ctx);
        }
        return;
    }
    let nshards = dst.shard_count();
    if nshards > 1 {
        let mut buckets: Vec<Vec<TupleBuf>> = vec![Vec::new(); nshards];
        for t in tuples {
            buckets[shard_of(t[0], nshards)].push(*t);
        }
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers.min(nshards) {
                let (cursor, buckets) = (&cursor, &buckets);
                s.spawn(move || loop {
                    let b = cursor.fetch_add(1, Relaxed);
                    if b >= nshards {
                        break;
                    }
                    if buckets[b].is_empty() {
                        continue;
                    }
                    pin_counter_stripe(b);
                    let mut ctx = dst.make_ctx();
                    for t in &buckets[b] {
                        dst.insert(t, &mut ctx);
                    }
                });
            }
        });
        return;
    }
    let workers = workers.min(tuples.len());
    let per = tuples.len().div_ceil(workers);
    std::thread::scope(|s| {
        for chunk in tuples.chunks(per) {
            s.spawn(move || {
                let mut ctx = dst.make_ctx();
                for t in chunk {
                    dst.insert(t, &mut ctx);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn rel_ids(names: &[&str]) -> HashMap<String, usize> {
        names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.to_string(), i))
            .collect()
    }

    #[test]
    fn compile_nonrecursive_single_version() {
        let p =
            parse(".decl edge(x:n, y:n)\n.decl path(x:n, y:n)\npath(X,Y) :- edge(X,Y).").unwrap();
        let ids = rel_ids(&["edge", "path"]);
        let plans = compile_versions(&p.rules[0], &ids, &[1]);
        assert_eq!(plans.len(), 1);
        let plan = &plans[0];
        assert_eq!(plan.nvars, 2);
        assert!(matches!(
            &plan.steps[0],
            Step::Scan { rel: 0, delta: false, prefix, binds, .. }
                if prefix.is_empty() && binds.len() == 2
        ));
    }

    #[test]
    fn compile_recursive_versions_hoist_delta() {
        let p = parse(
            ".decl edge(x:n, y:n)\n.decl path(x:n, y:n)\n\
             path(X,Z) :- path(X,Y), edge(Y,Z).",
        )
        .unwrap();
        let ids = rel_ids(&["edge", "path"]);
        let plans = compile_versions(&p.rules[0], &ids, &[1]);
        assert_eq!(plans.len(), 1, "one recursive occurrence, one version");
        let plan = &plans[0];
        // Step 0: delta scan of path; step 1: edge scan with bound prefix Y.
        assert!(matches!(
            &plan.steps[0],
            Step::Scan {
                rel: 1,
                delta: true,
                ..
            }
        ));
        match &plan.steps[1] {
            Step::Scan {
                rel: 0,
                delta: false,
                prefix,
                ..
            } => assert_eq!(prefix.len(), 1, "Y binds edge's first column"),
            other => panic!("unexpected step {other:?}"),
        }
    }

    #[test]
    fn compile_two_recursive_occurrences_two_versions() {
        let p = parse(".decl p(x:n, y:n)\np(X,Z) :- p(X,Y), p(Y,Z).").unwrap();
        let ids = rel_ids(&["p"]);
        let plans = compile_versions(&p.rules[0], &ids, &[0]);
        assert_eq!(plans.len(), 2);
        assert!(matches!(&plans[0].steps[0], Step::Scan { delta: true, .. }));
        assert!(matches!(&plans[1].steps[0], Step::Scan { delta: true, .. }));
    }

    #[test]
    fn compile_constant_prefix_and_checks() {
        let p = parse(".decl r(a:n, b:n, c:n)\n.decl out(x:n)\nout(X) :- r(7, X, 7).").unwrap();
        let ids = rel_ids(&["r", "out"]);
        let plans = compile_versions(&p.rules[0], &ids, &[1]);
        match &plans[0].steps[0] {
            Step::Scan {
                prefix,
                checks,
                binds,
                ..
            } => {
                assert_eq!(prefix, &vec![Slot::Const(7)]);
                assert_eq!(checks, &vec![(2, Slot::Const(7))]);
                assert_eq!(binds, &vec![(1, 0)]);
            }
            other => panic!("unexpected step {other:?}"),
        }
    }

    #[test]
    fn compile_repeated_variable_becomes_check() {
        let p = parse(".decl r(a:n, b:n)\n.decl out(x:n)\nout(X) :- r(X, X).").unwrap();
        let ids = rel_ids(&["r", "out"]);
        let plans = compile_versions(&p.rules[0], &ids, &[1]);
        match &plans[0].steps[0] {
            Step::Scan { checks, binds, .. } => {
                assert_eq!(binds, &vec![(0, 0)]);
                assert_eq!(checks, &vec![(1, Slot::Var(0))]);
            }
            other => panic!("unexpected step {other:?}"),
        }
    }

    #[test]
    fn compile_negated_literal_is_check() {
        let p =
            parse(".decl a(x:n)\n.decl b(x:n)\n.decl out(x:n)\nout(X) :- a(X), !b(X).").unwrap();
        let ids = rel_ids(&["a", "b", "out"]);
        let plans = compile_versions(&p.rules[0], &ids, &[2]);
        assert!(matches!(
            &plans[0].steps[1],
            Step::Check {
                rel: 1,
                negated: true,
                ..
            }
        ));
    }

    #[test]
    fn compile_fully_bound_positive_is_check() {
        let p = parse(".decl a(x:n)\n.decl b(x:n)\n.decl out(x:n)\nout(X) :- a(X), b(X).").unwrap();
        let ids = rel_ids(&["a", "b", "out"]);
        let plans = compile_versions(&p.rules[0], &ids, &[2]);
        assert!(matches!(
            &plans[0].steps[1],
            Step::Check {
                rel: 1,
                negated: false,
                ..
            }
        ));
    }
}
