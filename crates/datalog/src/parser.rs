//! A hand-written recursive-descent parser for the Datalog dialect.
//!
//! Grammar (whitespace and `//` line comments allowed everywhere):
//!
//! ```text
//! program    := item*
//! item       := decl | directive | clause
//! decl       := ".decl" NAME "(" param ("," param)* ")"
//! param      := NAME (":" NAME)?          // the type annotation is cosmetic
//! directive  := (".input" | ".output") NAME
//! clause     := atom ( ":-" literal ("," literal)* )? "."
//! literal    := "!"? atom
//! atom       := NAME "(" term ("," term)* ")"
//! term       := NUMBER | "_" | NAME       // lowercase or uppercase names are variables
//! ```
//!
//! Facts (clauses without a body) must be ground.

use crate::ast::{Atom, CmpOp, ColType, Constraint, Literal, Program, Rule, Term, MAX_ARITY};
use std::fmt;

/// A parse error with line/column information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Name(String),
    Number(u64),
    /// A quoted string literal (interned into the program's symbol table).
    Str(String),
    Punct(char),
    /// `:-`
    Turnstile,
    /// A comparison operator.
    Cmp(CmpOp),
    /// `.decl`, `.input`, `.output`
    Keyword(String),
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn next_tok(&mut self) -> Result<(Tok, usize, usize), ParseError> {
        self.skip_trivia();
        let (line, col) = (self.line, self.col);
        let err = |line, col, m: String| ParseError {
            line,
            col,
            message: m,
        };
        let Some(c) = self.peek() else {
            return Ok((Tok::Eof, line, col));
        };
        match c {
            b'0'..=b'9' => {
                let mut n: u64 = 0;
                while let Some(d @ b'0'..=b'9') = self.peek() {
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add((d - b'0') as u64))
                        .ok_or_else(|| err(line, col, "integer literal overflows u64".into()))?;
                    self.bump();
                }
                Ok((Tok::Number(n), line, col))
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' || c == b'?' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                let name = std::str::from_utf8(&self.src[start..self.pos])
                    .expect("ascii")
                    .to_string();
                Ok((Tok::Name(name), line, col))
            }
            b'.' => {
                // Either a keyword (`.decl`) or the clause terminator.
                if matches!(self.peek2(), Some(c) if c.is_ascii_alphabetic()) {
                    self.bump(); // '.'
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c.is_ascii_alphanumeric() {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    let kw = std::str::from_utf8(&self.src[start..self.pos])
                        .expect("ascii")
                        .to_string();
                    Ok((Tok::Keyword(kw), line, col))
                } else {
                    self.bump();
                    Ok((Tok::Punct('.'), line, col))
                }
            }
            b':' if self.peek2() == Some(b'-') => {
                self.bump();
                self.bump();
                Ok((Tok::Turnstile, line, col))
            }
            b'"' => {
                self.bump(); // opening quote
                let mut out = String::new();
                loop {
                    match self.bump() {
                        None => return Err(err(line, col, "unterminated string literal".into())),
                        Some(b'"') => break,
                        Some(b'\\') => match self.bump() {
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            other => {
                                return Err(err(
                                    line,
                                    col,
                                    format!("invalid escape {:?}", other.map(|c| c as char)),
                                ))
                            }
                        },
                        Some(c) => out.push(c as char),
                    }
                }
                Ok((Tok::Str(out), line, col))
            }
            b'<' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok((Tok::Cmp(CmpOp::Le), line, col))
                } else {
                    Ok((Tok::Cmp(CmpOp::Lt), line, col))
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok((Tok::Cmp(CmpOp::Ge), line, col))
                } else {
                    Ok((Tok::Cmp(CmpOp::Gt), line, col))
                }
            }
            b'=' => {
                self.bump();
                Ok((Tok::Cmp(CmpOp::Eq), line, col))
            }
            b'!' if self.peek2() == Some(b'=') => {
                self.bump();
                self.bump();
                Ok((Tok::Cmp(CmpOp::Ne), line, col))
            }
            b'(' | b')' | b',' | b'!' | b':' => {
                self.bump();
                Ok((Tok::Punct(c as char), line, col))
            }
            other => Err(err(
                line,
                col,
                format!("unexpected character {:?}", other as char),
            )),
        }
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    tok: Tok,
    line: usize,
    col: usize,
    symbols: crate::ast::SymbolTable,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Self, ParseError> {
        let mut lexer = Lexer::new(src);
        let (tok, line, col) = lexer.next_tok()?;
        Ok(Self {
            lexer,
            tok,
            line,
            col,
            symbols: crate::ast::SymbolTable::new(),
        })
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn advance(&mut self) -> Result<(), ParseError> {
        let (tok, line, col) = self.lexer.next_tok()?;
        self.tok = tok;
        self.line = line;
        self.col = col;
        Ok(())
    }

    fn expect_punct(&mut self, p: char) -> Result<(), ParseError> {
        if self.tok == Tok::Punct(p) {
            self.advance()
        } else {
            Err(self.error(format!("expected {p:?}, found {:?}", self.tok)))
        }
    }

    fn expect_name(&mut self) -> Result<String, ParseError> {
        match std::mem::replace(&mut self.tok, Tok::Eof) {
            Tok::Name(n) => {
                self.advance()?;
                Ok(n)
            }
            other => {
                self.tok = other;
                Err(self.error(format!("expected a name, found {:?}", self.tok)))
            }
        }
    }

    fn parse_program(&mut self) -> Result<Program, ParseError> {
        let mut program = Program::new();
        loop {
            match &self.tok {
                Tok::Eof => break,
                Tok::Keyword(kw) => {
                    let kw = kw.clone();
                    self.advance()?;
                    match kw.as_str() {
                        "decl" => self.parse_decl(&mut program)?,
                        "input" | "output" => {
                            let name = self.expect_name()?;
                            let decl = program
                                .decls
                                .iter_mut()
                                .find(|d| d.name == name)
                                .ok_or_else(|| {
                                    self.error(format!(".{kw} of undeclared relation {name}"))
                                })?;
                            if kw == "input" {
                                decl.is_input = true;
                            } else {
                                decl.is_output = true;
                            }
                        }
                        other => return Err(self.error(format!("unknown directive .{other}"))),
                    }
                }
                Tok::Name(_) => self.parse_clause(&mut program)?,
                other => {
                    return Err(
                        self.error(format!("expected a declaration or clause, found {other:?}"))
                    )
                }
            }
        }
        program.symbols = std::mem::take(&mut self.symbols);
        Ok(program)
    }

    fn parse_decl(&mut self, program: &mut Program) -> Result<(), ParseError> {
        let name = self.expect_name()?;
        if program.decl(&name).is_some() {
            return Err(self.error(format!("relation {name} declared twice")));
        }
        self.expect_punct('(')?;
        let mut col_types = Vec::new();
        loop {
            let _param = self.expect_name()?;
            // Optional type annotation: `x : number` / `x : symbol`
            // (anything else is treated as number).
            let mut ty = ColType::Number;
            if self.tok == Tok::Punct(':') {
                self.advance()?;
                if self.expect_name()? == "symbol" {
                    ty = ColType::Symbol;
                }
            }
            col_types.push(ty);
            match self.tok {
                Tok::Punct(',') => self.advance()?,
                Tok::Punct(')') => {
                    self.advance()?;
                    break;
                }
                _ => return Err(self.error("expected ',' or ')' in declaration")),
            }
        }
        if col_types.len() > MAX_ARITY {
            return Err(self.error(format!(
                "relation {name} has arity {}, maximum supported is {MAX_ARITY}",
                col_types.len()
            )));
        }
        program.declare_typed(&name, col_types);
        Ok(())
    }

    fn parse_clause(&mut self, program: &mut Program) -> Result<(), ParseError> {
        let head = self.parse_atom()?;
        if self.tok == Tok::Punct('.') {
            // A fact: must be ground.
            self.advance()?;
            let mut tuple = Vec::with_capacity(head.terms.len());
            for t in &head.terms {
                match t {
                    Term::Const(c) => tuple.push(*c),
                    other => {
                        return Err(self.error(format!("facts must be ground, found term {other}")))
                    }
                }
            }
            program.fact(&head.relation, &tuple);
            return Ok(());
        }
        if self.tok != Tok::Turnstile {
            return Err(self.error("expected '.' or ':-' after atom"));
        }
        self.advance()?;
        let mut body = Vec::new();
        let mut constraints = Vec::new();
        loop {
            self.parse_body_item(&mut body, &mut constraints)?;
            match self.tok {
                Tok::Punct(',') => self.advance()?,
                Tok::Punct('.') => {
                    self.advance()?;
                    break;
                }
                _ => return Err(self.error("expected ',' or '.' in rule body")),
            }
        }
        program.rule(Rule {
            head,
            body,
            constraints,
        });
        Ok(())
    }

    /// Parses one body item: a (possibly negated) atom or a comparison
    /// constraint such as `X < Y` or `X != 3`.
    fn parse_body_item(
        &mut self,
        body: &mut Vec<Literal>,
        constraints: &mut Vec<Constraint>,
    ) -> Result<(), ParseError> {
        if self.tok == Tok::Punct('!') {
            self.advance()?;
            let atom = self.parse_atom()?;
            body.push(Literal {
                atom,
                negated: true,
            });
            return Ok(());
        }
        match std::mem::replace(&mut self.tok, Tok::Eof) {
            Tok::Number(n) => {
                self.advance()?;
                let c = self.parse_constraint_tail(Term::Const(n))?;
                constraints.push(c);
                Ok(())
            }
            Tok::Str(lit) => {
                self.advance()?;
                let id = self.symbols.intern(&lit);
                let c = self.parse_constraint_tail(Term::Const(id))?;
                constraints.push(c);
                Ok(())
            }
            Tok::Name(name) => {
                self.advance()?;
                if self.tok == Tok::Punct('(') {
                    let atom = self.parse_atom_args(name)?;
                    body.push(Literal {
                        atom,
                        negated: false,
                    });
                    Ok(())
                } else {
                    if name == "_" {
                        return Err(self.error("wildcard not allowed in a comparison"));
                    }
                    let c = self.parse_constraint_tail(Term::Var(name))?;
                    constraints.push(c);
                    Ok(())
                }
            }
            other => {
                self.tok = other;
                Err(self.error(format!(
                    "expected an atom or comparison, found {:?}",
                    self.tok
                )))
            }
        }
    }

    /// Having parsed the left operand, parses `<op> <term>`.
    fn parse_constraint_tail(&mut self, lhs: Term) -> Result<Constraint, ParseError> {
        let op = match self.tok {
            Tok::Cmp(op) => op,
            _ => return Err(self.error("expected a comparison operator")),
        };
        self.advance()?;
        let rhs = match std::mem::replace(&mut self.tok, Tok::Eof) {
            Tok::Number(n) => {
                self.advance()?;
                Term::Const(n)
            }
            Tok::Str(lit) => {
                self.advance()?;
                Term::Const(self.symbols.intern(&lit))
            }
            Tok::Name(n) => {
                self.advance()?;
                if n == "_" {
                    return Err(self.error("wildcard not allowed in a comparison"));
                }
                Term::Var(n)
            }
            other => {
                self.tok = other;
                return Err(self.error("expected a variable or constant after the operator"));
            }
        };
        Ok(Constraint { op, lhs, rhs })
    }

    fn parse_atom(&mut self) -> Result<Atom, ParseError> {
        let relation = self.expect_name()?;
        self.parse_atom_args(relation)
    }

    fn parse_atom_args(&mut self, relation: String) -> Result<Atom, ParseError> {
        self.expect_punct('(')?;
        let mut terms = Vec::new();
        loop {
            let term = match std::mem::replace(&mut self.tok, Tok::Eof) {
                Tok::Number(n) => {
                    self.advance()?;
                    Term::Const(n)
                }
                Tok::Str(lit) => {
                    self.advance()?;
                    Term::Const(self.symbols.intern(&lit))
                }
                Tok::Name(n) => {
                    self.advance()?;
                    if n == "_" {
                        Term::Wildcard
                    } else {
                        Term::Var(n)
                    }
                }
                other => {
                    self.tok = other;
                    return Err(self.error(format!("expected a term, found {:?}", self.tok)));
                }
            };
            terms.push(term);
            match self.tok {
                Tok::Punct(',') => self.advance()?,
                Tok::Punct(')') => {
                    self.advance()?;
                    break;
                }
                _ => return Err(self.error("expected ',' or ')' in atom")),
            }
        }
        Ok(Atom { relation, terms })
    }
}

/// Parses a program from source text.
///
/// ```
/// let program = datalog::parse(r#"
///     .decl edge(x: number, y: number)
///     .decl path(x: number, y: number)
///     .output path
///
///     edge(1, 2).  edge(2, 3).
///
///     path(x, y) :- edge(x, y).
///     path(x, z) :- path(x, y), edge(y, z).
/// "#).unwrap();
/// assert_eq!(program.rules.len(), 2);
/// assert_eq!(program.facts.len(), 2);
/// ```
pub fn parse(src: &str) -> Result<Program, ParseError> {
    Parser::new(src)?.parse_program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Term;

    #[test]
    fn parses_transitive_closure() {
        let p = parse(
            r#"
            // the running example of the paper (§2)
            .decl edge(x: number, y: number)
            .decl path(x: number, y: number)
            .input edge
            .output path
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            "#,
        )
        .unwrap();
        assert_eq!(p.decls.len(), 2);
        assert!(p.decl("edge").unwrap().is_input);
        assert!(p.decl("path").unwrap().is_output);
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.rules[1].body.len(), 2);
    }

    #[test]
    fn parses_facts_and_constants() {
        let p = parse(
            r#"
            .decl e(a: number, b: number)
            e(1, 2). e(18446744073709551615, 0).
            .decl f(x: number)
            f(X) :- e(X, 7).
            "#,
        )
        .unwrap();
        assert_eq!(p.facts.len(), 2);
        assert_eq!(p.facts[1].1[0], u64::MAX);
        assert_eq!(p.rules[0].body[0].atom.terms[1], Term::Const(7));
    }

    #[test]
    fn parses_negation_and_wildcards() {
        let p = parse(
            r#"
            .decl a(x: number)
            .decl b(x: number)
            .decl c(x: number, y: number)
            a(X) :- c(X, _), !b(X).
            "#,
        )
        .unwrap();
        let body = &p.rules[0].body;
        assert_eq!(body[0].atom.terms[1], Term::Wildcard);
        assert!(body[1].negated);
    }

    #[test]
    fn rejects_non_ground_facts() {
        let err = parse(".decl e(x: number)\ne(X).").unwrap_err();
        assert!(err.message.contains("ground"), "{err}");
    }

    #[test]
    fn rejects_double_declaration() {
        let err = parse(".decl e(x: number)\n.decl e(y: number)").unwrap_err();
        assert!(err.message.contains("twice"), "{err}");
    }

    #[test]
    fn rejects_unknown_directive() {
        let err = parse(".frobnicate e").unwrap_err();
        assert!(err.message.contains("unknown directive"), "{err}");
    }

    #[test]
    fn rejects_excessive_arity() {
        let err = parse(".decl e(a:n, b:n, c:n, d:n, e:n, f:n)").unwrap_err();
        assert!(err.message.contains("arity"), "{err}");
    }

    #[test]
    fn rejects_overflowing_integer() {
        let err = parse(".decl e(x: number)\ne(99999999999999999999999).").unwrap_err();
        assert!(err.message.contains("overflow"), "{err}");
    }

    #[test]
    fn reports_line_numbers() {
        let err = parse(".decl e(x: number)\n\n???").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn directive_on_undeclared_relation_fails() {
        let err = parse(".output ghost").unwrap_err();
        assert!(err.message.contains("undeclared"), "{err}");
    }
}
