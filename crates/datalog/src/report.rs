//! Per-relation storage-health reporting — [`Engine::storage_report`]
//! (see [`StorageReport`]).
//!
//! [`Engine::storage_report`]: crate::Engine::storage_report
//!
//! The engine's [`EvalStats`](crate::EvalStats) describe the *work* a run
//! performed; this report describes the *state* the relations are left
//! in: tuple counts per relation plus, for relations backed by the
//! specialized B-tree, the full structural census of
//! [`specbtree::TreeStats`] — depth, occupancy, gap fill, graveyard and
//! arena bytes. After a retraction workload this is where the cost of
//! tolerated underflow becomes visible: sparse leaves, sentinel-heavy
//! scan regions, and buried subtrees awaiting the next `clear`.

use specbtree::TreeStats;
use std::fmt::Write as _;

/// One relation's row in a [`StorageReport`].
#[derive(Clone, Debug)]
pub struct RelationReport {
    /// Declared relation name.
    pub name: String,
    /// Tuples currently stored.
    pub len: usize,
    /// Structural census when the relation is backed by the specialized
    /// B-tree; `None` for baseline storages (hash set, red-black tree,
    /// ...), which expose no comparable introspection. For a *sharded*
    /// relation this is the per-shard censuses folded into one via
    /// [`TreeStats::absorb`].
    pub tree: Option<TreeStats>,
    /// Per-shard tuple counts, in shard-index order; empty for unsharded
    /// backends. `max / mean` of this vector is the relation's balance
    /// figure.
    pub shard_lens: Vec<usize>,
    /// Column permutations of the secondary indexes maintained on this
    /// relation (chosen by the query planner), in index-id order; empty
    /// when the relation has none or the backend does not support them.
    pub index_perms: Vec<Vec<usize>>,
}

/// Point-in-time storage health of every relation of an engine, from
/// [`Engine::storage_report`](crate::Engine::storage_report). Quiescent
/// phases only — between runs, never during one.
#[derive(Clone, Debug, Default)]
pub struct StorageReport {
    /// One row per declared relation, in declaration order.
    pub relations: Vec<RelationReport>,
}

impl StorageReport {
    /// Renders an aligned human-readable table: one summary line per
    /// relation, followed by the indented tree census where available.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "storage report ({} relations)", self.relations.len());
        for rel in &self.relations {
            match &rel.tree {
                Some(t) => {
                    let _ = writeln!(
                        out,
                        "{}: {} tuples, depth {}, {:.0}% leaf fill, {:.0}% gap fill, {} buried",
                        rel.name,
                        rel.len,
                        t.depth,
                        100.0 * t.leaf_fill(),
                        100.0 * t.gap_fill(),
                        t.graveyard_len,
                    );
                    out.push_str(&t.to_table());
                }
                None => {
                    let _ = writeln!(out, "{}: {} tuples (no tree census)", rel.name, rel.len);
                }
            }
            if !rel.index_perms.is_empty() {
                let perms: Vec<String> = rel
                    .index_perms
                    .iter()
                    .map(|p| format!("{p:?}"))
                    .collect();
                let _ = writeln!(out, "  {:<18} {}", "indexes", perms.join(" "));
            }
            if !rel.shard_lens.is_empty() {
                let max = rel.shard_lens.iter().max().copied().unwrap_or(0);
                let mean = rel.len as f64 / rel.shard_lens.len() as f64;
                let balance = if mean > 0.0 { max as f64 / mean } else { 1.0 };
                let _ = writeln!(
                    out,
                    "  {:<18} {:?} (balance {:.2})",
                    "shards", rel.shard_lens, balance
                );
            }
        }
        out
    }

    /// Renders the report as a JSON object keyed by relation name (no
    /// trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"relations\": [");
        for (i, rel) in self.relations.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"name\": \"{}\", \"len\": {}, \"tree\": ",
                rel.name, rel.len
            );
            match &rel.tree {
                Some(t) => out.push_str(&t.to_json()),
                None => out.push_str("null"),
            }
            let lens: Vec<String> = rel.shard_lens.iter().map(usize::to_string).collect();
            let _ = write!(out, ", \"shard_lens\": [{}]", lens.join(", "));
            let perms: Vec<String> = rel
                .index_perms
                .iter()
                .map(|p| {
                    let cols: Vec<String> = p.iter().map(usize::to_string).collect();
                    format!("[{}]", cols.join(", "))
                })
                .collect();
            let _ = write!(out, ", \"index_perms\": [{}]", perms.join(", "));
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Totals across every tree-backed relation: `(keys, sentinels,
    /// buried subtrees, abandoned bytes)` — the headline "how sparse did
    /// the database get" figures.
    pub fn totals(&self) -> (u64, u64, u64, u64) {
        let mut t = (0, 0, 0, 0);
        for rel in self.relations.iter().filter_map(|r| r.tree.as_ref()) {
            t.0 += rel.keys;
            t.1 += rel.sentinels;
            t.2 += rel.graveyard_len;
            t.3 += rel.abandoned_bytes;
        }
        t
    }
}
