//! Soufflé-style fact file I/O: tab-separated values, one tuple per line —
//! the interchange format production Datalog engines use for `.facts`
//! (input) and `.csv` (output) files.

use crate::engine::{Engine, EngineError};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// An error reading or writing fact files.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
    /// Engine-level failure (unknown relation, arity mismatch).
    Engine(EngineError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, message } => write!(f, "line {line}: {message}"),
            IoError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<EngineError> for IoError {
    fn from(e: EngineError) -> Self {
        IoError::Engine(e)
    }
}

/// Parses tab-separated tuples from a reader. Empty lines are skipped.
pub fn read_tsv(reader: impl Read) -> Result<Vec<Vec<u64>>, IoError> {
    let mut out = Vec::new();
    for (i, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut tuple = Vec::new();
        for field in line.split('\t') {
            let v: u64 = field.trim().parse().map_err(|_| IoError::Parse {
                line: i + 1,
                message: format!("not an unsigned integer: {field:?}"),
            })?;
            tuple.push(v);
        }
        out.push(tuple);
    }
    Ok(out)
}

/// Writes tuples as tab-separated lines.
pub fn write_tsv(mut writer: impl Write, tuples: &[Vec<u64>]) -> Result<(), IoError> {
    let mut w = BufWriter::new(&mut writer);
    for t in tuples {
        let cells: Vec<String> = t.iter().map(u64::to_string).collect();
        writeln!(w, "{}", cells.join("\t"))?;
    }
    w.flush()?;
    Ok(())
}

impl Engine {
    /// Loads `<relation>.facts` from `dir` for every declared `.input`
    /// relation (missing files are treated as empty relations, matching
    /// Soufflé). Returns the number of tuples loaded.
    pub fn load_input_facts(&mut self, dir: impl AsRef<Path>) -> Result<usize, IoError> {
        let dir = dir.as_ref();
        let inputs: Vec<String> = self
            .input_relations()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut loaded = 0usize;
        for name in inputs {
            let path = dir.join(format!("{name}.facts"));
            if !path.exists() {
                continue;
            }
            let tuples = read_tsv(std::fs::File::open(&path)?)?;
            loaded += tuples.len();
            self.add_facts(&name, tuples)?;
        }
        Ok(loaded)
    }

    /// Writes `<relation>.csv` into `dir` for every declared `.output`
    /// relation.
    pub fn write_output_relations(&self, dir: impl AsRef<Path>) -> Result<(), IoError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        for name in self.output_relations() {
            let tuples = self.relation(&name)?;
            let file = std::fs::File::create(dir.join(format!("{name}.csv")))?;
            write_tsv(file, &tuples)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse, StorageKind};

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("datalog-io-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn tsv_roundtrip() {
        let tuples = vec![vec![1, 2], vec![18446744073709551615, 0]];
        let mut buf = Vec::new();
        write_tsv(&mut buf, &tuples).unwrap();
        assert_eq!(read_tsv(&buf[..]).unwrap(), tuples);
    }

    #[test]
    fn tsv_skips_blank_lines_and_reports_errors() {
        let src = b"1\t2\n\n3\t4\n".to_vec();
        assert_eq!(read_tsv(&src[..]).unwrap().len(), 2);
        let bad = b"1\tx\n".to_vec();
        let err = read_tsv(&bad[..]).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn engine_facts_roundtrip_through_files() {
        let dir = tempdir("roundtrip");
        std::fs::write(dir.join("edge.facts"), "1\t2\n2\t3\n3\t4\n").unwrap();

        let program = parse(
            r#"
            .decl edge(x: number, y: number)
            .decl path(x: number, y: number)
            .input edge
            .output path
            path(x, y) :- edge(x, y).
            path(x, z) :- path(x, y), edge(y, z).
            "#,
        )
        .unwrap();
        let mut engine = Engine::new(&program, StorageKind::SpecBTree, 2).unwrap();
        assert_eq!(engine.load_input_facts(&dir).unwrap(), 3);
        engine.run().unwrap();
        engine.write_output_relations(&dir).unwrap();

        let out = std::fs::read_to_string(dir.join("path.csv")).unwrap();
        let rows: Vec<&str> = out.lines().collect();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0], "1\t2");
        assert!(out.contains("1\t4"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_facts_file_is_empty_relation() {
        let dir = tempdir("missing");
        let program =
            parse(".decl edge(x:n, y:n)\n.input edge\n.decl out(x:n)\nout(X) :- edge(X, _).")
                .unwrap();
        let mut engine = Engine::new(&program, StorageKind::SpecBTree, 1).unwrap();
        assert_eq!(engine.load_input_facts(&dir).unwrap(), 0);
        engine.run().unwrap();
        assert_eq!(engine.relation_len("out").unwrap(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_arity_in_facts_file_is_reported() {
        let dir = tempdir("badarity");
        std::fs::write(dir.join("edge.facts"), "1\t2\t3\n").unwrap();
        let program = parse(".decl edge(x:n, y:n)\n.input edge").unwrap();
        let mut engine = Engine::new(&program, StorageKind::SpecBTree, 1).unwrap();
        let err = engine.load_input_facts(&dir).unwrap_err();
        assert!(matches!(err, IoError::Engine(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
