//! Cost-based join ordering and automatic secondary index selection.
//!
//! Souffl-style evaluation only indexes joins on a *leading-column*
//! prefix of the primary tree; any literal binding a non-leading column
//! degrades to a full scan per outer tuple. This module closes that gap
//! with the companion optimization from the Soufflé ecosystem (auto-index
//! selection, "MinIndex") plus a small cardinality-greedy join orderer:
//!
//! 1. **Signature collection** ([`scan_signatures`]): every non-outermost
//!    scan of a compiled plan contributes the *set* of columns that are
//!    bound when it runs — a bitmask point in the subset lattice of the
//!    relation's columns.
//! 2. **Minimum chain cover** ([`cover_masks`]): by Dilworth's theorem
//!    the minimum number of indexes covering all signatures equals the
//!    number of chains in a minimum chain partition of that lattice,
//!    computed via maximum bipartite matching on strict-subset pairs
//!    (Kuhn's augmenting paths). Each chain S₁ ⊂ S₂ ⊂ … ⊂ Sₖ yields one
//!    column permutation — S₁'s columns, then S₂∖S₁, …, then the
//!    unconstrained remainder — so a single extra B-tree serves every
//!    search in the chain as a leading-prefix range query.
//! 3. **Cost-based ordering** ([`greedy_order`]): literals are picked
//!    greedily by estimated result size `n^((a-b)/a)` (relation
//!    cardinality `n`, arity `a`, bound columns `b` — the textbook
//!    bound-fraction heuristic), with negations probed as soon as they
//!    are fully bound and cross products pushed to the back.
//! 4. **Index assignment** ([`assign_indexes`]): a second pass over the
//!    compiled plan rewrites every scan whose bound-column set is served
//!    by a registered index: the bound columns move from `checks` into a
//!    *permuted* prefix and the step carries an [`IndexSel`] the workers
//!    route through [`crate::storage::RelationStorage::scan_index`].
//!
//! The catalog ([`IndexCatalog`]) is derived by the engine from the scan
//! signatures of *all* plans it will run — program rules (every
//! semi-naive version) and, once retraction is exercised, the DRed
//! machinery's synthesized Δ⁻ rules, which is how the reverse joins of
//! the overdelete phase pick up their `{2,1}`-style indexes
//! automatically.

use crate::ast::{Rule, Term};
use crate::eval::{compile_one_at, compile_ordered, IndexSel, Plan, Slot, Step};
use std::collections::{HashMap, HashSet};

/// The set of secondary-index permutations registered per relation.
///
/// A permutation's position in its relation's list is the storage-level
/// index id ([`crate::storage::RelationStorage::add_index`] dedupes by
/// permutation, so engine-side and storage-side ids stay aligned as long
/// as both register in the same order — which [`add`](Self::add)'s
/// dedupe-by-perm guarantees).
#[derive(Clone, Debug, Default)]
pub(crate) struct IndexCatalog {
    /// Declared arity per relation id. Permutations cover exactly the
    /// declared columns; trailing [`crate::ast::MAX_ARITY`] padding is
    /// zero on both sides of the permutation and never affects order.
    arities: Vec<usize>,
    /// Registered permutations per relation, in registration order.
    perms: Vec<Vec<Vec<usize>>>,
}

impl IndexCatalog {
    pub(crate) fn new(arities: &[usize]) -> Self {
        Self {
            arities: arities.to_vec(),
            perms: vec![Vec::new(); arities.len()],
        }
    }

    pub(crate) fn nrels(&self) -> usize {
        self.perms.len()
    }

    /// Registers `perm` on `rel`, returning its index id; re-registering
    /// an existing permutation returns the original id.
    pub(crate) fn add(&mut self, rel: usize, perm: Vec<usize>) -> usize {
        debug_assert_eq!(
            perm.len(),
            self.arities[rel],
            "index permutation must cover exactly the declared columns"
        );
        if let Some(i) = self.perms[rel].iter().position(|p| *p == perm) {
            return i;
        }
        self.perms[rel].push(perm);
        self.perms[rel].len() - 1
    }

    /// The registered permutations of `rel`, id-ordered.
    pub(crate) fn perms(&self, rel: usize) -> &[Vec<usize>] {
        &self.perms[rel]
    }

    /// Finds an index on `rel` whose leading columns are exactly the
    /// bound-column set `mask`, returning `(id, perm)`.
    pub(crate) fn find(&self, rel: usize, mask: u32) -> Option<(usize, &[usize])> {
        if rel >= self.perms.len() {
            return None;
        }
        let k = mask.count_ones() as usize;
        self.perms[rel].iter().enumerate().find_map(|(i, perm)| {
            if perm.len() < k {
                return None;
            }
            let lead: u32 = perm[..k].iter().map(|&c| 1u32 << c).sum();
            (lead == mask).then_some((i, perm.as_slice()))
        })
    }

    /// Merges `other`'s permutations into `self` (existing ids keep their
    /// positions; genuinely new permutations are appended).
    pub(crate) fn merge(&mut self, other: &IndexCatalog) {
        for rel in 0..other.perms.len().min(self.perms.len()) {
            for perm in &other.perms[rel] {
                self.add(rel, perm.clone());
            }
        }
    }
}

/// A mask is a *prefix run* (`{0, 1, …, k-1}`) iff `mask + 1` is a power
/// of two — those searches are served by the primary tree for free.
fn is_prefix_run(mask: u32) -> bool {
    mask & (mask + 1) == 0
}

/// The first step index after which each variable is bound (`usize::MAX`
/// when never bound — head-only or constraint-only variables).
fn bound_at_steps(plan: &Plan) -> Vec<usize> {
    let mut bound_at = vec![usize::MAX; plan.nvars];
    for (si, step) in plan.steps.iter().enumerate() {
        if let Step::Scan { binds, .. } = step {
            for (_, v) in binds {
                if bound_at[*v] == usize::MAX {
                    bound_at[*v] = si;
                }
            }
        }
    }
    bound_at
}

/// Columns of the scan at step `si` whose values are fixed *before* the
/// step runs: the bound prefix plus every check against a constant or a
/// variable bound by an earlier step. A repeated variable bound by this
/// scan's own binds (e.g. `e(X, X)`) is excluded — it must stay a
/// post-scan check.
fn eligible_columns(step: &Step, si: usize, bound_at: &[usize]) -> (u32, Vec<(usize, Slot)>) {
    let Step::Scan { prefix, checks, .. } = step else {
        return (0, Vec::new());
    };
    let mut mask = 0u32;
    let mut cols = Vec::new();
    for (c, slot) in prefix.iter().enumerate() {
        mask |= 1 << c;
        cols.push((c, *slot));
    }
    for (c, slot) in checks {
        let eligible = match slot {
            Slot::Const(_) => true,
            Slot::Var(v) => bound_at[*v] < si,
        };
        if eligible {
            mask |= 1 << *c;
            cols.push((*c, *slot));
        }
    }
    (mask, cols)
}

/// The bound-column signature of every non-outermost scan in `plan`, as
/// `(rel, mask)` pairs. Skipped: delta scans (side tables are rebuilt
/// every iteration — indexing them would never amortize), pseudo
/// relations at ids `≥ nrels` (the retraction engine's per-call deletion
/// accumulators), empty masks, and prefix runs the primary tree already
/// serves.
pub(crate) fn scan_signatures(plan: &Plan, nrels: usize) -> Vec<(usize, u32)> {
    let bound_at = bound_at_steps(plan);
    let mut out = Vec::new();
    for (si, step) in plan.steps.iter().enumerate().skip(1) {
        let Step::Scan { rel, delta, .. } = step else {
            continue;
        };
        if *delta || *rel >= nrels {
            continue;
        }
        let (mask, _) = eligible_columns(step, si, &bound_at);
        if mask != 0 && !is_prefix_run(mask) {
            out.push((*rel, mask));
        }
    }
    out
}

/// Minimum chain cover of a set of search signatures (Soufflé's
/// "MinIndex" construction): returns the smallest set of column
/// permutations such that every mask is the leading-column set of some
/// permutation. Masks that are empty or prefix runs are dropped first
/// (the primary tree serves them); `arity` pads each permutation out to
/// a full column bijection so the index tree stores whole tuples.
pub(crate) fn cover_masks(masks: &[u32], arity: usize) -> Vec<Vec<usize>> {
    let full = (1u32 << arity) - 1;
    let mut uniq: Vec<u32> = masks
        .iter()
        .map(|&m| m & full)
        .filter(|&m| m != 0 && !is_prefix_run(m))
        .collect();
    uniq.sort_unstable();
    uniq.dedup();
    if uniq.is_empty() {
        return Vec::new();
    }
    let n = uniq.len();
    // Maximum bipartite matching over strict-subset pairs (Kuhn's
    // augmenting paths): left side = chain predecessors, right side =
    // chain successors. Dilworth: #chains = n − |matching|.
    let adj: Vec<Vec<usize>> = uniq
        .iter()
        .map(|&a| {
            uniq.iter()
                .enumerate()
                .filter(|&(_, &b)| a != b && a & b == a)
                .map(|(j, _)| j)
                .collect()
        })
        .collect();
    fn augment(
        i: usize,
        adj: &[Vec<usize>],
        seen: &mut [bool],
        succ_of: &mut [usize],
        pred_of: &mut [usize],
    ) -> bool {
        for &j in &adj[i] {
            if seen[j] {
                continue;
            }
            seen[j] = true;
            if pred_of[j] == usize::MAX || augment(pred_of[j], adj, seen, succ_of, pred_of) {
                succ_of[i] = j;
                pred_of[j] = i;
                return true;
            }
        }
        false
    }
    let mut succ_of = vec![usize::MAX; n];
    let mut pred_of = vec![usize::MAX; n];
    for i in 0..n {
        let mut seen = vec![false; n];
        augment(i, &adj, &mut seen, &mut succ_of, &mut pred_of);
    }
    // Each chain starts at a mask with no matched predecessor; walking
    // successor links visits S₁ ⊂ S₂ ⊂ … ⊂ Sₖ in order.
    let mut perms = Vec::new();
    for start in 0..n {
        if pred_of[start] != usize::MAX {
            continue;
        }
        let mut perm: Vec<usize> = Vec::with_capacity(arity);
        let mut covered = 0u32;
        let mut cur = start;
        loop {
            push_cols(uniq[cur] & !covered, &mut perm);
            covered |= uniq[cur];
            if succ_of[cur] == usize::MAX {
                break;
            }
            cur = succ_of[cur];
        }
        push_cols(full & !covered, &mut perm);
        perms.push(perm);
    }
    perms
}

/// Appends the column indices of `mask` in ascending order.
fn push_cols(mask: u32, out: &mut Vec<usize>) {
    for c in 0..32 {
        if mask & (1 << c) != 0 {
            out.push(c);
        }
    }
}

/// Derives the index catalog a set of plans needs: collect every scan
/// signature, then per relation compute the minimum chain cover.
pub(crate) fn derive_catalog(plans: &[Plan], arities: &[usize]) -> IndexCatalog {
    let mut per_rel: Vec<Vec<u32>> = vec![Vec::new(); arities.len()];
    for plan in plans {
        for (rel, mask) in scan_signatures(plan, arities.len()) {
            per_rel[rel].push(mask);
        }
    }
    let mut catalog = IndexCatalog::new(arities);
    for (rel, masks) in per_rel.iter().enumerate() {
        for perm in cover_masks(masks, arities[rel]) {
            catalog.add(rel, perm);
        }
    }
    catalog
}

/// Greedy cardinality-driven literal ordering. The delta literal (if
/// any) is forced outermost — semi-naive evaluation depends on it — and
/// the rest are picked smallest-estimated-cost first:
///
/// * positive literal: `n^((a−b)/a)` with `n` the relation's cardinality,
///   `a` its arity and `b` its bound columns (constants + variables bound
///   by already-picked literals) — the estimated number of matching
///   tuples per outer binding;
/// * a literal with *no* bound column that would not be outermost is a
///   cross product and is penalized `×10⁹`;
/// * a fully bound negation costs `−1` so it prunes as early as its
///   variables allow (unbound negations are ineligible until then).
///
/// Ties resolve to source order, which keeps plans — and `EXPLAIN`
/// output — deterministic across runs and thread counts.
pub(crate) fn greedy_order(
    rule: &Rule,
    rel_ids: &HashMap<String, usize>,
    delta_pos: Option<usize>,
    card: &dyn Fn(usize) -> f64,
) -> Vec<usize> {
    let nlits = rule.body.len();
    let mut order: Vec<usize> = Vec::with_capacity(nlits);
    let mut used = vec![false; nlits];
    let mut bound: HashSet<&str> = HashSet::new();
    if let Some(p) = delta_pos {
        order.push(p);
        used[p] = true;
        for t in &rule.body[p].atom.terms {
            if let Term::Var(v) = t {
                bound.insert(v.as_str());
            }
        }
    }
    while order.len() < nlits {
        let mut best: Option<(f64, usize)> = None;
        for li in 0..nlits {
            if used[li] {
                continue;
            }
            let lit = &rule.body[li];
            let a = lit.atom.terms.len().max(1);
            let mut b = 0usize;
            let mut unbound_vars = 0usize;
            for t in &lit.atom.terms {
                match t {
                    Term::Const(_) => b += 1,
                    Term::Var(v) => {
                        if bound.contains(v.as_str()) {
                            b += 1;
                        } else {
                            unbound_vars += 1;
                        }
                    }
                    Term::Wildcard => {}
                }
            }
            let cost = if lit.negated {
                if unbound_vars > 0 {
                    continue; // not yet safe to probe
                }
                -1.0
            } else {
                let n = card(rel_ids[&lit.atom.relation]).max(1.0);
                let frac = (a - b) as f64 / a as f64;
                let mut c = n.powf(frac);
                if b == 0 && !order.is_empty() {
                    c *= 1e9;
                }
                c
            };
            if best.is_none_or(|(bc, _)| cost < bc) {
                best = Some((cost, li));
            }
        }
        let Some((_, li)) = best else {
            break; // only not-yet-bound negations remain
        };
        order.push(li);
        used[li] = true;
        for t in &rule.body[li].atom.terms {
            if let Term::Var(v) = t {
                bound.insert(v.as_str());
            }
        }
    }
    // Safety net — stratification rejects rules that strand a negation,
    // so this only fires on internally synthesized shapes.
    for li in 0..nlits {
        if !used[li] {
            order.push(li);
        }
    }
    order
}

/// Second compilation pass: rewrites every inner scan whose bound-column
/// set is served by a catalog index. The bound columns (prefix slots and
/// eligible checks) become a prefix *in the index's permuted order* and
/// the step carries the [`IndexSel`] workers route through
/// [`crate::storage::RelationStorage::scan_index`]. Outermost scans,
/// delta scans and pseudo relations are left untouched.
pub(crate) fn assign_indexes(mut plan: Plan, catalog: &IndexCatalog) -> Plan {
    let bound_at = bound_at_steps(&plan);
    for si in 1..plan.steps.len() {
        let (rel, mask, cols) = match &plan.steps[si] {
            Step::Scan {
                rel, delta: false, ..
            } if *rel < catalog.nrels() => {
                let (mask, cols) = eligible_columns(&plan.steps[si], si, &bound_at);
                (*rel, mask, cols)
            }
            _ => continue,
        };
        if mask == 0 || is_prefix_run(mask) {
            continue;
        }
        let Some((id, perm)) = catalog.find(rel, mask) else {
            continue;
        };
        let sel = IndexSel {
            id,
            perm: perm.to_vec(),
        };
        let k = mask.count_ones() as usize;
        let col_slot: HashMap<usize, Slot> = cols.into_iter().collect();
        let new_prefix: Vec<Slot> = sel.perm[..k].iter().map(|c| col_slot[c]).collect();
        let Step::Scan {
            prefix,
            checks,
            index,
            ..
        } = &mut plan.steps[si]
        else {
            unreachable!("matched a scan above")
        };
        *prefix = new_prefix;
        checks.retain(|(c, _)| mask & (1 << *c) == 0);
        *index = Some(sel);
    }
    plan
}

/// Compiles one version of `rule` with cost-based literal ordering, then
/// assigns indexes. `hoist: false` compiles in pure source order instead
/// (the retraction engine's escape hatch for plans where even an indexed
/// hoist loses to a source-order sweep); indexes are still assigned.
pub(crate) fn plan_rule(
    rule: &Rule,
    rel_ids: &HashMap<String, usize>,
    delta_pos: Option<usize>,
    hoist: bool,
    card: &dyn Fn(usize) -> f64,
    catalog: &IndexCatalog,
) -> Plan {
    let plan = if hoist {
        let order = greedy_order(rule, rel_ids, delta_pos, card);
        compile_ordered(rule, rel_ids, delta_pos, &order)
    } else {
        compile_one_at(rule, rel_ids, delta_pos, false)
    };
    assign_indexes(plan, catalog)
}

/// Planner twin of [`crate::eval::compile_versions`]: one cost-ordered,
/// index-assigned plan per semi-naive version of `rule`.
pub(crate) fn plan_versions(
    rule: &Rule,
    rel_ids: &HashMap<String, usize>,
    stratum_rels: &[usize],
    card: &dyn Fn(usize) -> f64,
    catalog: &IndexCatalog,
) -> Vec<Plan> {
    let recursive_positions: Vec<usize> = rule
        .body
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.negated && stratum_rels.contains(&rel_ids[&l.atom.relation]))
        .map(|(i, _)| i)
        .collect();
    if recursive_positions.is_empty() {
        return vec![plan_rule(rule, rel_ids, None, true, card, catalog)];
    }
    recursive_positions
        .iter()
        .map(|&p| plan_rule(rule, rel_ids, Some(p), true, card, catalog))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn rel_ids(names: &[&str]) -> HashMap<String, usize> {
        names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.to_string(), i))
            .collect()
    }

    #[test]
    fn prefix_runs_are_dropped() {
        // {0} and {0,1} are leading prefixes — the primary tree serves them.
        assert!(cover_masks(&[0b1, 0b11], 3).is_empty());
    }

    #[test]
    fn single_mask_single_perm() {
        // {1} on a binary relation → index keyed column 1 then column 0.
        assert_eq!(cover_masks(&[0b10], 2), vec![vec![1, 0]]);
    }

    #[test]
    fn chain_collapses_to_one_perm() {
        // {2} ⊂ {1,2} ⊂ {1,2,3}: one chain, one index.
        assert_eq!(
            cover_masks(&[0b100, 0b110, 0b1110], 4),
            vec![vec![2, 1, 3, 0]]
        );
    }

    #[test]
    fn incomparable_masks_need_two_perms() {
        // {1,2} and {0,2} are incomparable — no single leading-column
        // order serves both.
        let perms = cover_masks(&[0b110, 0b101], 3);
        assert_eq!(perms.len(), 2);
        for p in &perms {
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2], "each perm is a full bijection");
        }
    }

    #[test]
    fn diamond_takes_two_chains() {
        // {1}, {2} ⊂ {1,2}: maximum matching has size 1 → two chains.
        let perms = cover_masks(&[0b10, 0b100, 0b110], 3);
        assert_eq!(perms.len(), 2);
        // One of the chains runs {1} ⊂ {1,2} or {2} ⊂ {1,2}; both masks
        // must be served by *some* perm's leading columns.
        let serves = |mask: u32| {
            perms.iter().any(|p| {
                let k = mask.count_ones() as usize;
                p[..k].iter().map(|&c| 1u32 << c).sum::<u32>() == mask
            })
        };
        assert!(serves(0b10) && serves(0b100) && serves(0b110));
    }

    #[test]
    fn greedy_puts_small_relation_first() {
        let p = parse(
            ".decl big(x:n, y:n)\n.decl small(y:n, z:n)\n.decl out(x:n, z:n)\n\
             out(X,Z) :- big(X,Y), small(Y,Z).",
        )
        .unwrap();
        let ids = rel_ids(&["big", "small", "out"]);
        let card = |r: usize| if r == 0 { 1_000_000.0 } else { 10.0 };
        assert_eq!(greedy_order(&p.rules[0], &ids, None, &card), vec![1, 0]);
    }

    #[test]
    fn greedy_keeps_delta_outermost() {
        let p = parse(
            ".decl edge(x:n, y:n)\n.decl path(x:n, y:n)\n\
             path(X,Z) :- path(X,Y), edge(Y,Z).",
        )
        .unwrap();
        let ids = rel_ids(&["edge", "path"]);
        let card = |_: usize| 1000.0;
        assert_eq!(greedy_order(&p.rules[0], &ids, Some(0), &card), vec![0, 1]);
    }

    #[test]
    fn greedy_probes_negation_as_soon_as_bound() {
        let p = parse(
            ".decl a(x:n)\n.decl b(x:n)\n.decl c(x:n, y:n)\n.decl out(x:n, y:n)\n\
             out(X,Y) :- a(X), c(X,Y), !b(X).",
        )
        .unwrap();
        let ids = rel_ids(&["a", "b", "c", "out"]);
        let card = |_: usize| 100.0;
        // !b(X) is eligible right after a(X) binds X — before c's scan.
        assert_eq!(greedy_order(&p.rules[0], &ids, None, &card), vec![0, 2, 1]);
    }

    #[test]
    fn signatures_skip_outermost_and_prefix_served() {
        let p = parse(
            ".decl probe(x:n)\n.decl fact(y:n, x:n)\n.decl out(x:n)\n\
             out(X) :- probe(X), fact(Y, X).",
        )
        .unwrap();
        let ids = rel_ids(&["probe", "fact", "out"]);
        let plan = compile_one_at(&p.rules[0], &ids, None, true);
        // fact's column 1 is bound when its scan runs → signature {1}.
        assert_eq!(scan_signatures(&plan, 3), vec![(1, 0b10)]);
    }

    #[test]
    fn assign_rewrites_scan_to_permuted_prefix() {
        let p = parse(
            ".decl probe(x:n)\n.decl fact(y:n, x:n)\n.decl out(x:n)\n\
             out(X) :- probe(X), fact(Y, X).",
        )
        .unwrap();
        let ids = rel_ids(&["probe", "fact", "out"]);
        let mut catalog = IndexCatalog::new(&[1, 2, 1]);
        catalog.add(1, vec![1, 0]);
        let plan = assign_indexes(compile_one_at(&p.rules[0], &ids, None, true), &catalog);
        match &plan.steps[1] {
            Step::Scan {
                prefix,
                checks,
                index,
                ..
            } => {
                assert_eq!(prefix.len(), 1, "bound column moved into the prefix");
                assert!(checks.is_empty(), "covered check folded away");
                let sel = index.as_ref().expect("index assigned");
                assert_eq!((sel.id, sel.perm.as_slice()), (0, &[1usize, 0][..]));
            }
            other => panic!("unexpected step {other:?}"),
        }
        assert!(!crate::eval::has_unprefixed_inner_scan(&plan));
    }

    #[test]
    fn repeated_variable_check_survives_assignment() {
        // fact(Y, Y): the second Y is bound by the scan's own bind — it
        // must stay a check even when an index exists.
        let p = parse(
            ".decl probe(x:n)\n.decl fact(y:n, x:n)\n.decl out(x:n)\n\
             out(X) :- probe(X), fact(Y, Y).",
        )
        .unwrap();
        let ids = rel_ids(&["probe", "fact", "out"]);
        let mut catalog = IndexCatalog::new(&[1, 2, 1]);
        catalog.add(1, vec![1, 0]);
        let plan = assign_indexes(compile_one_at(&p.rules[0], &ids, None, true), &catalog);
        match &plan.steps[1] {
            Step::Scan { checks, index, .. } => {
                assert_eq!(checks.len(), 1, "intra-tuple equality stays a check");
                assert!(index.is_none(), "no eligible bound column → no index");
            }
            other => panic!("unexpected step {other:?}"),
        }
    }

    #[test]
    fn catalog_find_and_dedupe() {
        let mut c = IndexCatalog::new(&[2, 3]);
        assert_eq!(c.add(1, vec![2, 0, 1]), 0);
        assert_eq!(c.add(1, vec![2, 0, 1]), 0, "dedupe keeps the id");
        assert_eq!(c.add(1, vec![1, 2, 0]), 1);
        assert_eq!(c.find(1, 0b100).map(|(i, _)| i), Some(0));
        assert_eq!(c.find(1, 0b110).map(|(i, _)| i), Some(1));
        assert_eq!(c.find(1, 0b011), None);
        assert_eq!(c.find(0, 0b10), None);
    }

    #[test]
    fn derive_catalog_from_reverse_join() {
        // The DRed overdelete shape: Δedge outer, path scanned with its
        // second column bound → path needs a [1,0] index.
        let p = parse(
            ".decl edge(x:n, y:n)\n.decl path(x:n, y:n)\n\
             path(X,Z) :- path(X,Y), edge(Y,Z).",
        )
        .unwrap();
        let ids = rel_ids(&["edge", "path"]);
        // Delta on edge (position 1): hoisting strands path(X,Y)... with
        // Y bound, exactly the reverse join.
        let plan = compile_one_at(&p.rules[0], &ids, Some(1), true);
        let catalog = derive_catalog(&[plan], &[2, 2]);
        assert_eq!(catalog.perms(1), &[vec![1, 0]]);
        assert!(catalog.perms(0).is_empty());
    }
}
