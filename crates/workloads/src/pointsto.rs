//! A synthetic field-sensitive Andersen-style points-to analysis — the
//! substitute for the paper's Doop/DaCapo context-sensitive var-points-to
//! benchmark (§4.3, Figure 5a, Table 2 left column).
//!
//! **Substitution note** (see DESIGN.md): the paper runs Doop's
//! context-sensitive analysis over the DaCapo Java suite — hundreds of
//! relations and rules over proprietary-scale fact bases. What the §4.3
//! experiment actually stresses is the *shape*: a deeply recursive,
//! insertion-heavy fixpoint whose operation mix is dominated by inserts and
//! range queries over sorted relations (Table 2: 8.3e7 inserts vs 2.5e7
//! produced tuples). A classic inclusion-based points-to analysis over a
//! generated synthetic program has exactly that shape and is the canonical
//! Datalog benchmark family Doop belongs to.
//!
//! The generated program:
//!
//! ```text
//! vpt(v, h)    :- new(v, h).                                   // allocation
//! vpt(v, h)    :- assign(v, w), vpt(w, h).                     // copy
//! hpt(h, f, g) :- store(v, f, w), vpt(v, h), vpt(w, g).        // v.f = w
//! vpt(v, g)    :- load(v, w, f), vpt(w, h), hpt(h, f, g).      // v = w.f
//! ```

use datalog::{parse, Program};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Size parameters of the synthetic program under analysis.
#[derive(Clone, Copy, Debug)]
pub struct PointsToConfig {
    /// Number of program variables.
    pub variables: u64,
    /// Number of allocation sites.
    pub heaps: u64,
    /// Number of field names.
    pub fields: u64,
    /// Number of `v = new ...` facts.
    pub news: usize,
    /// Number of `v = w` copy facts.
    pub assigns: usize,
    /// Number of `v.f = w` store facts.
    pub stores: usize,
    /// Number of `v = w.f` load facts.
    pub loads: usize,
}

impl PointsToConfig {
    /// A configuration scaled by a single knob (roughly linear fact count).
    pub fn scaled(scale: usize) -> Self {
        let scale = scale.max(1);
        Self {
            variables: (scale * 40) as u64,
            heaps: (scale * 8) as u64,
            fields: 12,
            news: scale * 12,
            assigns: scale * 60,
            stores: scale * 20,
            loads: scale * 20,
        }
    }
}

/// The analysis rules (fixed) — see the module docs.
pub const POINTSTO_RULES: &str = r#"
    .decl new(v: number, h: number)
    .decl assign(v: number, w: number)
    .decl store(v: number, f: number, w: number)
    .decl load(v: number, w: number, f: number)
    .decl vpt(v: number, h: number)
    .decl hpt(h: number, f: number, g: number)
    .input new
    .input assign
    .input store
    .input load
    .output vpt
    .output hpt

    vpt(v, h)    :- new(v, h).
    vpt(v, h)    :- assign(v, w), vpt(w, h).
    hpt(h, f, g) :- store(v, f, w), vpt(v, h), vpt(w, g).
    vpt(v, g)    :- load(v, w, f), vpt(w, h), hpt(h, f, g).
"#;

/// Generated facts of a synthetic program.
#[derive(Clone, Debug, Default)]
pub struct PointsToFacts {
    /// `new(v, h)` facts.
    pub news: Vec<(u64, u64)>,
    /// `assign(v, w)` facts.
    pub assigns: Vec<(u64, u64)>,
    /// `store(v, f, w)` facts.
    pub stores: Vec<(u64, u64, u64)>,
    /// `load(v, w, f)` facts.
    pub loads: Vec<(u64, u64, u64)>,
}

impl PointsToFacts {
    /// Total fact count.
    pub fn len(&self) -> usize {
        self.news.len() + self.assigns.len() + self.stores.len() + self.loads.len()
    }

    /// Whether no facts were generated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Generates a synthetic program's facts, deterministically per seed.
///
/// Assignments are biased towards forming long copy chains (as real
/// programs exhibit through call parameter passing), which drives the
/// fixpoint through many iterations — the insertion-heavy profile of the
/// Doop benchmark.
pub fn generate_facts(cfg: &PointsToConfig, seed: u64) -> PointsToFacts {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut facts = PointsToFacts::default();
    let v = cfg.variables.max(2);
    let h = cfg.heaps.max(1);
    let f = cfg.fields.max(1);

    for _ in 0..cfg.news {
        facts.news.push((rng.gen_range(0..v), rng.gen_range(0..h)));
    }
    for i in 0..cfg.assigns {
        // 70% chain-forming (v+1 <- v style locality), 30% random.
        let (dst, src) = if i % 10 < 7 {
            let src = rng.gen_range(0..v - 1);
            (src + 1, src)
        } else {
            (rng.gen_range(0..v), rng.gen_range(0..v))
        };
        facts.assigns.push((dst, src));
    }
    for _ in 0..cfg.stores {
        facts.stores.push((
            rng.gen_range(0..v),
            rng.gen_range(0..f),
            rng.gen_range(0..v),
        ));
    }
    for _ in 0..cfg.loads {
        facts.loads.push((
            rng.gen_range(0..v),
            rng.gen_range(0..v),
            rng.gen_range(0..f),
        ));
    }
    facts.news.sort_unstable();
    facts.news.dedup();
    facts.assigns.sort_unstable();
    facts.assigns.dedup();
    facts.stores.sort_unstable();
    facts.stores.dedup();
    facts.loads.sort_unstable();
    facts.loads.dedup();
    facts
}

/// Parses the fixed rule set into a program.
pub fn program() -> Program {
    parse(POINTSTO_RULES).expect("static rule text parses")
}

/// Loads generated facts into an engine built from [`program`].
pub fn load_facts(
    engine: &mut datalog::Engine,
    facts: &PointsToFacts,
) -> Result<(), datalog::EngineError> {
    engine.add_facts("new", facts.news.iter().map(|&(a, b)| vec![a, b]))?;
    engine.add_facts("assign", facts.assigns.iter().map(|&(a, b)| vec![a, b]))?;
    engine.add_facts("store", facts.stores.iter().map(|&(a, b, c)| vec![a, b, c]))?;
    engine.add_facts("load", facts.loads.iter().map(|&(a, b, c)| vec![a, b, c]))?;
    Ok(())
}

/// Reference solver over std collections, for verifying engine output.
pub fn reference_vpt(facts: &PointsToFacts) -> std::collections::BTreeSet<(u64, u64)> {
    use std::collections::BTreeSet;
    let mut vpt: BTreeSet<(u64, u64)> = facts.news.iter().copied().collect();
    let mut hpt: BTreeSet<(u64, u64, u64)> = BTreeSet::new();
    loop {
        let mut changed = false;
        let vpt_snapshot: Vec<_> = vpt.iter().copied().collect();
        for &(dst, src) in &facts.assigns {
            for &(w, h) in &vpt_snapshot {
                if w == src && vpt.insert((dst, h)) {
                    changed = true;
                }
            }
        }
        for &(v, f, w) in &facts.stores {
            for &(vv, h) in &vpt_snapshot {
                if vv != v {
                    continue;
                }
                for &(ww, g) in &vpt_snapshot {
                    if ww == w && hpt.insert((h, f, g)) {
                        changed = true;
                    }
                }
            }
        }
        let hpt_snapshot: Vec<_> = hpt.iter().copied().collect();
        for &(v, w, f) in &facts.loads {
            for &(ww, h) in &vpt_snapshot {
                if ww != w {
                    continue;
                }
                for &(hh, ff, g) in &hpt_snapshot {
                    if hh == h && ff == f && vpt.insert((v, g)) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return vpt;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog::{Engine, StorageKind};

    #[test]
    fn facts_are_deterministic_and_dedup() {
        let cfg = PointsToConfig::scaled(2);
        let a = generate_facts(&cfg, 7);
        let b = generate_facts(&cfg, 7);
        assert_eq!(a.news, b.news);
        assert_eq!(a.assigns, b.assigns);
        assert!(!a.is_empty());
        let mut assigns = a.assigns.clone();
        assigns.dedup();
        assert_eq!(assigns.len(), a.assigns.len());
    }

    #[test]
    fn engine_matches_reference_solver() {
        let cfg = PointsToConfig {
            variables: 30,
            heaps: 6,
            fields: 4,
            news: 10,
            assigns: 40,
            stores: 12,
            loads: 12,
        };
        let facts = generate_facts(&cfg, 99);
        let expect = reference_vpt(&facts);

        let mut engine = Engine::new(&program(), StorageKind::SpecBTree, 2).unwrap();
        load_facts(&mut engine, &facts).unwrap();
        engine.run().unwrap();
        let got: std::collections::BTreeSet<(u64, u64)> = engine
            .relation("vpt")
            .unwrap()
            .into_iter()
            .map(|t| (t[0], t[1]))
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn workload_is_insertion_heavy() {
        let facts = generate_facts(&PointsToConfig::scaled(3), 5);
        let mut engine = Engine::new(&program(), StorageKind::SpecBTree, 1).unwrap();
        load_facts(&mut engine, &facts).unwrap();
        engine.run().unwrap();
        let s = engine.stats();
        assert!(
            s.produced_tuples > s.input_tuples,
            "fixpoint must derive more than it was given: {s:?}"
        );
        assert!(s.iterations > 3, "recursion too shallow: {s:?}");
    }
}
