//! 2D-point and integer-key workload generators for the micro-benchmarks
//! (paper §4.1, §4.2, §4.4).
//!
//! The paper inserts N² two-dimensional points — "2D data is the most
//! relevant case in many Datalog queries" — either in lexicographic order
//! or in a seeded random permutation.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A 2D point workload: all points of a `side × side` grid.
///
/// `ordered` yields them in lexicographic order (the paper's *ordered*
/// case); otherwise a deterministic shuffle of the given `seed` is applied
/// (the *random order* case).
pub fn points_2d(side: u64, ordered: bool, seed: u64) -> Vec<[u64; 2]> {
    let mut pts: Vec<[u64; 2]> = Vec::with_capacity((side * side) as usize);
    for a in 0..side {
        for b in 0..side {
            pts.push([a, b]);
        }
    }
    if !ordered {
        pts.shuffle(&mut StdRng::seed_from_u64(seed));
    }
    pts
}

/// The membership-query sequence of the paper's Figure 3c/3d: every element
/// of the set probed exactly once, in order or shuffled.
pub fn query_sequence(side: u64, ordered: bool, seed: u64) -> Vec<[u64; 2]> {
    // Distinct seed domain from the insert shuffle so the two permutations
    // differ.
    points_2d(side, ordered, seed ^ 0xABCD_EF01)
}

/// 32-bit integer keys for the §4.4 comparison (Table 3 inserts 10M fixed
/// size 32-bit integers, ordered or random).
pub fn keys_u32(n: usize, ordered: bool, seed: u64) -> Vec<u32> {
    let mut keys: Vec<u32> = (0..n as u32).collect();
    if !ordered {
        keys.shuffle(&mut StdRng::seed_from_u64(seed));
    }
    keys
}

/// Splits `items` into `threads` nearly equal contiguous batches — the
/// strong-scaling partitioning of the paper's Figure 4 ("partitioning of
/// the elements to be inserted among the threads").
pub fn partition_batches<T: Clone>(items: &[T], threads: usize) -> Vec<Vec<T>> {
    let threads = threads.max(1);
    let chunk = items.len().div_ceil(threads);
    items.chunks(chunk.max(1)).map(|c| c.to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_points_are_sorted_and_complete() {
        let pts = points_2d(10, true, 0);
        assert_eq!(pts.len(), 100);
        assert!(pts.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(pts[0], [0, 0]);
        assert_eq!(pts[99], [9, 9]);
    }

    #[test]
    fn random_points_are_a_permutation() {
        let mut pts = points_2d(10, false, 42);
        assert_ne!(pts, points_2d(10, true, 42), "shuffle happened");
        pts.sort_unstable();
        assert_eq!(pts, points_2d(10, true, 0));
    }

    #[test]
    fn shuffles_are_deterministic_per_seed() {
        assert_eq!(points_2d(20, false, 7), points_2d(20, false, 7));
        assert_ne!(points_2d(20, false, 7), points_2d(20, false, 8));
    }

    #[test]
    fn query_sequence_differs_from_insert_shuffle() {
        assert_ne!(points_2d(20, false, 7), query_sequence(20, false, 7));
    }

    #[test]
    fn u32_keys() {
        let ordered = keys_u32(1000, true, 0);
        assert!(ordered.windows(2).all(|w| w[0] < w[1]));
        let mut random = keys_u32(1000, false, 3);
        assert_ne!(random, ordered);
        random.sort_unstable();
        assert_eq!(random, ordered);
    }

    #[test]
    fn partitioning_covers_everything() {
        let items: Vec<u64> = (0..103).collect();
        for t in [1, 2, 7, 16] {
            let batches = partition_batches(&items, t);
            assert!(batches.len() <= t);
            let total: usize = batches.iter().map(|b| b.len()).sum();
            assert_eq!(total, 103, "t={t}");
        }
        assert_eq!(partition_batches(&items[..0], 4).len(), 0);
    }
}
