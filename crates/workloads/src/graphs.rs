//! Graph generators for transitive-closure-style Datalog workloads.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// A simple directed chain `0 → 1 → … → n`.
pub fn chain(n: u64) -> Vec<(u64, u64)> {
    (0..n).map(|i| (i, i + 1)).collect()
}

/// A directed cycle over `n` nodes.
pub fn cycle(n: u64) -> Vec<(u64, u64)> {
    (0..n).map(|i| (i, (i + 1) % n)).collect()
}

/// A 2D grid with edges right and down (acyclic, quadratic closure).
pub fn grid(side: u64) -> Vec<(u64, u64)> {
    let id = |r: u64, c: u64| r * side + c;
    let mut edges = Vec::new();
    for r in 0..side {
        for c in 0..side {
            if c + 1 < side {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < side {
                edges.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    edges
}

/// A perfect binary tree of the given depth (node 1 is the root; node `i`
/// has children `2i` and `2i+1`). Returns `parent → child` edges.
pub fn binary_tree(depth: u32) -> Vec<(u64, u64)> {
    let mut edges = Vec::new();
    let internal = (1u64 << depth) - 1;
    for i in 1..=internal {
        edges.push((i, 2 * i));
        edges.push((i, 2 * i + 1));
    }
    edges
}

/// A random directed graph: `n` nodes, each with `out_degree` random
/// successors (duplicates removed). Deterministic per seed.
pub fn random_graph(n: u64, out_degree: usize, seed: u64) -> Vec<(u64, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n as usize * out_degree);
    for v in 0..n {
        for _ in 0..out_degree {
            edges.push((v, rng.gen_range(0..n)));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// A layered DAG: `layers` layers of `width` nodes; every node connects to
/// `fanout` random nodes of the next layer. Mimics call-graph-like shapes
/// (bounded depth, wide closure).
pub fn layered_dag(layers: u64, width: u64, fanout: usize, seed: u64) -> Vec<(u64, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for l in 0..layers.saturating_sub(1) {
        for w in 0..width {
            let from = l * width + w;
            for _ in 0..fanout {
                let to = (l + 1) * width + rng.gen_range(0..width);
                edges.push((from, to));
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// Reference transitive closure (semi-naive over std sets) for verifying
/// engine output on any generated graph.
pub fn reference_tc(edges: &[(u64, u64)]) -> std::collections::BTreeSet<(u64, u64)> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut succ: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for &(a, b) in edges {
        succ.entry(a).or_default().push(b);
    }
    let mut path: BTreeSet<(u64, u64)> = edges.iter().copied().collect();
    let mut delta: Vec<(u64, u64)> = edges.to_vec();
    while !delta.is_empty() {
        let mut new = Vec::new();
        for &(x, y) in &delta {
            if let Some(nexts) = succ.get(&y) {
                for &z in nexts {
                    if path.insert((x, z)) {
                        new.push((x, z));
                    }
                }
            }
        }
        delta = new;
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_and_cycle_shapes() {
        assert_eq!(chain(3), vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(cycle(3), vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn grid_edge_count() {
        // side*side nodes, 2*side*(side-1) edges.
        assert_eq!(grid(4).len(), 2 * 4 * 3);
    }

    #[test]
    fn binary_tree_edges() {
        let e = binary_tree(3);
        assert_eq!(e.len(), 2 * 7);
        assert!(e.contains(&(1, 2)));
        assert!(e.contains(&(7, 15)));
    }

    #[test]
    fn random_graph_deterministic_and_in_range() {
        let a = random_graph(50, 3, 9);
        let b = random_graph(50, 3, 9);
        assert_eq!(a, b);
        assert!(a.iter().all(|&(x, y)| x < 50 && y < 50));
        assert!(!a.is_empty());
    }

    #[test]
    fn layered_dag_only_goes_forward() {
        let e = layered_dag(4, 5, 2, 1);
        for &(a, b) in &e {
            assert_eq!(a / 5 + 1, b / 5, "edge {a}->{b} skips layers");
        }
    }

    #[test]
    fn reference_tc_on_chain() {
        let tc = reference_tc(&chain(5));
        assert_eq!(tc.len(), 5 * 6 / 2);
        assert!(tc.contains(&(0, 5)));
        assert!(!tc.contains(&(5, 0)));
    }

    #[test]
    fn reference_tc_on_cycle_is_complete() {
        let tc = reference_tc(&cycle(4));
        assert_eq!(tc.len(), 16);
    }
}
