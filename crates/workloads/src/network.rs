//! A synthetic cloud-network security analysis — the substitute for the
//! paper's Amazon EC2 security vulnerability benchmark (§4.3, Figure 5b,
//! Table 2 right column).
//!
//! **Substitution note** (see DESIGN.md): the original fact base is
//! proprietary. Table 2 characterizes its profile precisely, and this
//! generator reproduces it:
//!
//! * **read heavy**: 4.2e9 membership tests and 5e9 bound calls against
//!   only 2.1e7 inserts — here achieved by rules that repeatedly probe a
//!   large reachability relation (negation + fully-bound checks);
//! * **one dominant relation**: 1.2e7 of 1.6e7 tuples concentrate in a
//!   single relation — here `reach`, the connectivity closure;
//! * **highly ordered access**: hint hit rates of ~77% — ordered instance
//!   ids probed in ascending joins.
//!
//! The model: instances belong to security groups; group-to-group allow
//! rules plus listening ports induce a connection graph; its closure is
//! `reach`; internet-exposed instances that reach sensitive instances are
//! vulnerabilities.

use datalog::{parse, Program};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Size parameters for the synthetic network.
#[derive(Clone, Copy, Debug)]
pub struct NetworkConfig {
    /// Number of instances.
    pub instances: u64,
    /// Number of security groups.
    pub groups: u64,
    /// Number of distinct ports in use.
    pub ports: u64,
    /// Group-to-group allow rules.
    pub allow_rules: usize,
    /// Listening (instance, port) pairs.
    pub listeners: usize,
    /// Number of internet-facing groups.
    pub public_groups: u64,
    /// Number of sensitive instances.
    pub sensitive: usize,
}

impl NetworkConfig {
    /// A configuration scaled by a single knob.
    pub fn scaled(scale: usize) -> Self {
        let scale = scale.max(1);
        Self {
            instances: (scale * 60) as u64,
            groups: (scale * 6) as u64,
            ports: 16,
            allow_rules: scale * 18,
            listeners: scale * 60,
            public_groups: 2,
            sensitive: scale * 6,
        }
    }
}

/// The analysis rules (fixed) — see the module docs.
pub const NETWORK_RULES: &str = r#"
    .decl in_group(i: number, g: number)
    .decl allow(gfrom: number, gto: number, p: number)
    .decl listens(i: number, p: number)
    .decl public(g: number)
    .decl sensitive(i: number)
    .input in_group
    .input allow
    .input listens
    .input public
    .input sensitive
    .decl conn(a: number, b: number)
    .decl reach(a: number, b: number)
    .decl exposed(i: number)
    .decl vulnerable(a: number, b: number)
    .decl isolated(i: number)
    .output reach
    .output vulnerable
    .output isolated

    conn(a, b) :- in_group(a, ga), allow(ga, gb, p), in_group(b, gb), listens(b, p).
    reach(a, b) :- conn(a, b).
    reach(a, c) :- reach(a, b), conn(b, c).
    exposed(i) :- public(g), in_group(i, g).
    vulnerable(a, b) :- exposed(a), reach(a, b), sensitive(b).
    isolated(i) :- in_group(i, _), !reach(i, i).
"#;

/// Generated facts of a synthetic network.
#[derive(Clone, Debug, Default)]
pub struct NetworkFacts {
    /// `in_group(instance, group)`.
    pub in_group: Vec<(u64, u64)>,
    /// `allow(group_from, group_to, port)`.
    pub allow: Vec<(u64, u64, u64)>,
    /// `listens(instance, port)`.
    pub listens: Vec<(u64, u64)>,
    /// `public(group)`.
    pub public: Vec<u64>,
    /// `sensitive(instance)`.
    pub sensitive: Vec<u64>,
}

impl NetworkFacts {
    /// Total fact count.
    pub fn len(&self) -> usize {
        self.in_group.len()
            + self.allow.len()
            + self.listens.len()
            + self.public.len()
            + self.sensitive.len()
    }

    /// Whether no facts were generated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Generates network facts, deterministically per seed.
pub fn generate_facts(cfg: &NetworkConfig, seed: u64) -> NetworkFacts {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut facts = NetworkFacts::default();
    let g = cfg.groups.max(1);
    let p = cfg.ports.max(1);

    // Every instance in exactly one group (plus a second membership for
    // some, like real deployments).
    for i in 0..cfg.instances {
        facts.in_group.push((i, rng.gen_range(0..g)));
        if i % 5 == 0 {
            facts.in_group.push((i, rng.gen_range(0..g)));
        }
    }
    for _ in 0..cfg.allow_rules {
        facts.allow.push((
            rng.gen_range(0..g),
            rng.gen_range(0..g),
            rng.gen_range(0..p),
        ));
    }
    for _ in 0..cfg.listeners {
        facts
            .listens
            .push((rng.gen_range(0..cfg.instances), rng.gen_range(0..p)));
    }
    for gi in 0..cfg.public_groups.min(g) {
        facts.public.push(gi);
    }
    for _ in 0..cfg.sensitive {
        facts.sensitive.push(rng.gen_range(0..cfg.instances));
    }

    facts.in_group.sort_unstable();
    facts.in_group.dedup();
    facts.allow.sort_unstable();
    facts.allow.dedup();
    facts.listens.sort_unstable();
    facts.listens.dedup();
    facts.public.sort_unstable();
    facts.public.dedup();
    facts.sensitive.sort_unstable();
    facts.sensitive.dedup();
    facts
}

/// Parses the fixed rule set into a program.
pub fn program() -> Program {
    parse(NETWORK_RULES).expect("static rule text parses")
}

/// Loads generated facts into an engine built from [`program`].
pub fn load_facts(
    engine: &mut datalog::Engine,
    facts: &NetworkFacts,
) -> Result<(), datalog::EngineError> {
    engine.add_facts("in_group", facts.in_group.iter().map(|&(a, b)| vec![a, b]))?;
    engine.add_facts("allow", facts.allow.iter().map(|&(a, b, c)| vec![a, b, c]))?;
    engine.add_facts("listens", facts.listens.iter().map(|&(a, b)| vec![a, b]))?;
    engine.add_facts("public", facts.public.iter().map(|&a| vec![a]))?;
    engine.add_facts("sensitive", facts.sensitive.iter().map(|&a| vec![a]))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog::{Engine, StorageKind};
    use std::collections::BTreeSet;

    fn reference_reach(facts: &NetworkFacts) -> BTreeSet<(u64, u64)> {
        // conn from the generator's facts, then closure.
        let mut conn = BTreeSet::new();
        for &(a, ga) in &facts.in_group {
            for &(gf, gt, p) in &facts.allow {
                if gf != ga {
                    continue;
                }
                for &(b, gb) in &facts.in_group {
                    if gb == gt && facts.listens.contains(&(b, p)) {
                        conn.insert((a, b));
                    }
                }
            }
        }
        crate::graphs::reference_tc(&conn.iter().copied().collect::<Vec<_>>())
    }

    #[test]
    fn deterministic_generation() {
        let cfg = NetworkConfig::scaled(1);
        assert_eq!(
            generate_facts(&cfg, 3).in_group,
            generate_facts(&cfg, 3).in_group
        );
        assert!(!generate_facts(&cfg, 3).is_empty());
    }

    #[test]
    fn engine_reach_matches_reference() {
        let cfg = NetworkConfig {
            instances: 25,
            groups: 4,
            ports: 5,
            allow_rules: 10,
            listeners: 25,
            public_groups: 1,
            sensitive: 3,
        };
        let facts = generate_facts(&cfg, 11);
        let expect = reference_reach(&facts);
        let mut engine = Engine::new(&program(), StorageKind::SpecBTree, 2).unwrap();
        load_facts(&mut engine, &facts).unwrap();
        engine.run().unwrap();
        let got: BTreeSet<(u64, u64)> = engine
            .relation("reach")
            .unwrap()
            .into_iter()
            .map(|t| (t[0], t[1]))
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn profile_is_read_heavy_with_dominant_relation() {
        let facts = generate_facts(&NetworkConfig::scaled(3), 2);
        let mut engine = Engine::new(&program(), StorageKind::SpecBTree, 1).unwrap();
        load_facts(&mut engine, &facts).unwrap();
        engine.run().unwrap();
        let s = *engine.stats();
        assert!(
            s.membership_tests > s.inserts,
            "expected read-heavy profile: {s:?}"
        );
        // `reach` dominates the produced tuples (the paper's single
        // dominant relation).
        let reach = engine.relation_len("reach").unwrap() as u64;
        assert!(
            reach * 2 > s.produced_tuples,
            "reach = {reach}, produced = {}",
            s.produced_tuples
        );
        // Ordered probing makes hints effective (§4.3 reports ~77%).
        assert!(s.hints.hit_rate() > 0.3, "hint rate {}", s.hints.hit_rate());
    }

    #[test]
    fn vulnerable_subset_of_reach_times_sensitive() {
        let facts = generate_facts(&NetworkConfig::scaled(2), 4);
        let mut engine = Engine::new(&program(), StorageKind::SpecBTree, 2).unwrap();
        load_facts(&mut engine, &facts).unwrap();
        engine.run().unwrap();
        let reach: BTreeSet<(u64, u64)> = engine
            .relation("reach")
            .unwrap()
            .into_iter()
            .map(|t| (t[0], t[1]))
            .collect();
        for v in engine.relation("vulnerable").unwrap() {
            assert!(reach.contains(&(v[0], v[1])));
            assert!(facts.sensitive.contains(&v[1]));
        }
    }
}
