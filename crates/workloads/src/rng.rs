//! The workspace's shared test/benchmark PRNG.
//!
//! Every crate's tests used to carry a private copy of this splitmix64
//! routine; they all call this one now so seeds mean the same thing
//! everywhere (and so chaos model tests, which must not consume scheduler
//! randomness, have a deterministic data source of their own).

/// One step of splitmix64 (Steele, Lea & Flood, OOPSLA 2014): advances
/// `state` and returns a well-mixed 64-bit value. Passes BigCrush when used
/// as a stream; trivially seedable from any `u64`.
#[inline]
pub fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateful wrapper around [`splitmix`] for call sites that prefer a
/// generator object to a `&mut u64`.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// The next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        splitmix(&mut self.0)
    }

    /// A value uniform in `0..bound` (`bound` must be nonzero). Uses simple
    /// modulo — fine for tests, where the tiny modulo bias is irrelevant.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_mixed() {
        let mut a = 42u64;
        let mut b = 42u64;
        let x = splitmix(&mut a);
        assert_eq!(x, splitmix(&mut b), "same seed, same stream");
        assert_ne!(splitmix(&mut a), x, "stream advances");
    }

    #[test]
    fn wrapper_matches_free_function() {
        let mut state = 7u64;
        let mut gen = SplitMix64::new(7);
        for _ in 0..10 {
            assert_eq!(gen.next_u64(), splitmix(&mut state));
        }
        assert!(gen.below(10) < 10);
    }
}
