//! # workloads — inputs for every experiment in the evaluation
//!
//! Deterministic (seeded) generators for the paper's benchmark inputs:
//!
//! * [`points`] — 2D-point insertion/query/scan sequences (Figures 3–4) and
//!   32-bit integer keys (Table 3);
//! * [`graphs`] — graph families for transitive-closure workloads, with a
//!   reference closure for validation;
//! * [`pointsto`] — a synthetic Andersen-style points-to analysis standing
//!   in for the Doop/DaCapo benchmark (Figure 5a, Table 2);
//! * [`network`] — a synthetic cloud-network security analysis standing in
//!   for the Amazon EC2 benchmark (Figure 5b, Table 2).
//!
//! Substitution rationales live in DESIGN.md and in the module docs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod graphs;
pub mod network;
pub mod points;
pub mod pointsto;
pub mod rng;

/// A simple wall-clock stopwatch used by the benchmark harnesses.
#[derive(Debug)]
pub struct Stopwatch(std::time::Instant);

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

impl Stopwatch {
    /// Starts timing.
    pub fn start() -> Self {
        Self(std::time::Instant::now())
    }

    /// Seconds elapsed since start.
    pub fn secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }

    /// Throughput in million operations per second for `ops` operations
    /// performed since start.
    pub fn mops(&self, ops: usize) -> f64 {
        ops as f64 / self.secs() / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_time() {
        let sw = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(sw.secs() >= 0.009);
        assert!(sw.mops(1_000_000) > 0.0);
    }
}
