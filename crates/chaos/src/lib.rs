//! # chaos — deterministic schedule exploration for the lock & B-tree protocol
//!
//! The paper's correctness claims are about *all* interleavings of the
//! optimistic lock (Fig. 2) and the B-tree insertion protocol
//! (Algorithms 1–2); wall-clock stress tests sample a vanishing,
//! nondeterministic slice of that space and cannot replay a failure. This
//! crate is a from-scratch, registry-free mini-[loom]: a cooperative
//! scheduler that serializes "virtual threads" and decides, at every shared
//! memory access, which thread runs next — from a seeded PRNG, so any seed
//! replays its exact interleaving.
//!
//! Three pieces:
//!
//! * [`sync`] — drop-in atomics (`chaos::sync::AtomicU64`, ...) that are
//!   plain std aliases normally and scheduler-instrumented under
//!   `--cfg chaos` (set `RUSTFLAGS="--cfg chaos"`, like loom);
//! * [`model`] — the virtual-thread executor: runs a closure once per seed,
//!   panics with the failing seed (and replay instructions) on any
//!   assertion failure, deadlock or livelock;
//! * [`linearize`] — a small-history linearizability checker for set
//!   operations, used by the B-tree model tests.
//!
//! ## Example
//!
//! ```
//! use chaos::sync::{AtomicU64, Ordering::Relaxed};
//! use std::sync::Arc;
//!
//! chaos::model(0..16, || {
//!     let c = Arc::new(AtomicU64::new(0));
//!     let c2 = c.clone();
//!     let t = chaos::thread::spawn(move || {
//!         c2.fetch_add(1, Relaxed);
//!     });
//!     c.fetch_add(1, Relaxed);
//!     t.join();
//!     assert_eq!(c.load(Relaxed), 2);
//! });
//! ```
//!
//! Without `--cfg chaos` the same test still runs, but interleaves only at
//! spawn/join granularity; the CI `chaos` job runs the instrumented build
//! across a seed matrix.
//!
//! [loom]: https://github.com/tokio-rs/loom

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod linearize;
mod rt;
pub mod sync;
pub mod thread;

use std::ops::Range;
use std::sync::Arc;

pub use rt::MAX_THREADS;

/// Scheduling strategy for a model run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Uniformly random choice among runnable threads at every yield point.
    /// Fair in expectation, which optimistic spin loops need.
    Random,
    /// PCT-style bounded preemption (Burckhardt et al., ASPLOS 2010):
    /// random thread priorities, the highest-priority runnable thread runs,
    /// and at `depth` random change points the running thread is demoted.
    /// Spin hints also demote, so seqlock-style spinners cannot starve the
    /// writer they wait for.
    Pct {
        /// Number of priority change points (the PCT "depth" parameter
        /// `d`); bugs needing `d` preemptions are found with probability
        /// `>= 1/(n * k^(d-1))` per seed.
        depth: u32,
    },
}

/// Configuration of a model run.
#[derive(Clone, Debug)]
pub struct Config {
    /// How the scheduler picks the next thread at each yield point.
    pub strategy: Strategy,
    /// Abort a run (reporting a failure) after this many scheduling steps —
    /// the livelock/starvation backstop.
    pub max_steps: u64,
    /// Expected schedule length used to place PCT change points.
    pub pct_expected_steps: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            strategy: Strategy::Random,
            max_steps: 500_000,
            pct_expected_steps: 1_000,
        }
    }
}

impl Config {
    /// The default random-walk configuration.
    pub fn random() -> Self {
        Self::default()
    }

    /// A PCT configuration with the given preemption depth.
    pub fn pct(depth: u32) -> Self {
        Self {
            strategy: Strategy::Pct { depth },
            ..Self::default()
        }
    }
}

/// Result of checking one seed.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// The seed that produced this execution.
    pub seed: u64,
    /// Hash of the complete schedule trace (thread choices + event kinds).
    /// Identical seeds produce identical hashes — the determinism contract.
    pub trace_hash: u64,
    /// Number of scheduling steps the execution took.
    pub steps: u64,
    /// Number of virtual threads the execution spawned (including the root).
    pub threads: usize,
    /// The failure message, if the execution failed (assertion panic,
    /// deadlock, or exhausted step budget).
    pub failure: Option<String>,
}

/// Explores every seed in `seeds`, panicking on the first failing one with
/// a message naming the seed (re-run `model(seed..seed + 1, ...)` to replay
/// that exact interleaving).
///
/// The closure runs once per seed as virtual thread 0; it typically spawns
/// further threads with [`thread::spawn`] and joins them. State must be
/// created *inside* the closure (shared via `Arc`), so every seed starts
/// fresh.
pub fn model<F>(seeds: Range<u64>, f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    model_with(&Config::default(), seeds, f);
}

/// [`model`] with an explicit [`Config`].
pub fn model_with<F>(cfg: &Config, seeds: Range<u64>, f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    for seed in seeds {
        let out = rt::run_one(cfg, seed, f.clone());
        if let Some(msg) = out.failure {
            panic!(
                "chaos model failed at seed {seed} (trace {:#018x}, {} steps, \
                 {} threads):\n{msg}\nreplay deterministically with \
                 chaos::model({seed}..{}, ...)",
                out.trace_hash,
                out.steps,
                out.threads,
                seed + 1,
            );
        }
    }
}

/// Runs a single seed and reports its [`Outcome`] instead of panicking.
/// This is the building block for determinism tests (compare
/// [`Outcome::trace_hash`] across runs) and for the harness self-test.
pub fn check<F>(cfg: &Config, seed: u64, f: F) -> Outcome
where
    F: Fn() + Send + Sync + 'static,
{
    rt::run_one(cfg, seed, Arc::new(f))
}

/// Explores `seeds` and returns the outcome of the first failing seed, or
/// `None` when every seed passes. Used by the `chaos-inject-bug` self-test
/// ("the harness must catch the planted bug within this seed budget").
pub fn find_failure<F>(cfg: &Config, seeds: Range<u64>, f: F) -> Option<Outcome>
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    for seed in seeds {
        let out = rt::run_one(cfg, seed, f.clone());
        if out.failure.is_some() {
            return Some(out);
        }
    }
    None
}

/// An explicit, labeled protocol yield point.
///
/// The protocol crates mark their algorithmic decision points with this
/// (lease validation, write escalation, split, root swap); under
/// `--cfg chaos` each call is a scheduling opportunity whose label is
/// folded into the trace hash. In normal builds it compiles to nothing.
#[cfg(chaos)]
#[inline]
pub fn checkpoint(label: &'static str) {
    rt::checkpoint_labeled(label);
}

/// An explicit, labeled protocol yield point (no-op: not a chaos build).
#[cfg(not(chaos))]
#[inline(always)]
pub fn checkpoint(_label: &'static str) {}

/// Spin-loop hints that participate in scheduling.
pub mod hint {
    /// Inside a model run: a yield point that deprioritizes the spinner
    /// (under PCT), letting the thread it waits for make progress. Outside:
    /// [`std::hint::spin_loop`].
    #[inline]
    pub fn spin_loop() {
        if crate::rt::in_model() {
            crate::rt::yield_point(crate::rt::YieldKind::Spin);
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Whether the caller is executing inside a model run. Lets shared test
/// helpers pick model-appropriate workload sizes.
pub fn is_modeling() -> bool {
    rt::in_model()
}

/// The seed range for model tests: `CHAOS_SEED_START` / `CHAOS_SEED_COUNT`
/// environment variables when set (how the CI seed matrix shards work),
/// `default` otherwise.
pub fn seeds_from_env(default: Range<u64>) -> Range<u64> {
    let parse = |name: &str| {
        std::env::var(name)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
    };
    match (parse("CHAOS_SEED_START"), parse("CHAOS_SEED_COUNT")) {
        (Some(start), Some(count)) => start..start + count,
        (Some(start), None) => {
            let len = default.end.saturating_sub(default.start);
            start..start + len
        }
        (None, Some(count)) => default.start..default.start + count,
        (None, None) => default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_from_env_defaults_when_unset() {
        // Tests run in one process; avoid mutating the environment and only
        // exercise the default path here (the CI job exercises the rest).
        if std::env::var("CHAOS_SEED_START").is_err() && std::env::var("CHAOS_SEED_COUNT").is_err()
        {
            assert_eq!(seeds_from_env(3..9), 3..9);
        }
    }

    #[test]
    fn config_constructors() {
        assert_eq!(Config::random().strategy, Strategy::Random);
        assert_eq!(Config::pct(3).strategy, Strategy::Pct { depth: 3 });
    }
}
