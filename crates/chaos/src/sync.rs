//! Instrumented drop-in replacements for `std::sync::atomic`.
//!
//! Protocol crates (`optlock`, `specbtree`) declare their shared state with
//! these types. In a normal build they are literal type aliases of the std
//! atomics — zero overhead, identical layout. Under `--cfg chaos` each type
//! becomes a `#[repr(transparent)]` wrapper that reports a scheduler yield
//! point before every load/store/RMW, which is what lets [`crate::model`]
//! interleave threads *between* any two shared-memory accesses.
//!
//! # Layout contract
//!
//! Every wrapper is `#[repr(transparent)]` over its std atomic and adds no
//! fields. Downstream `unsafe` code relies on this: `specbtree` allocates
//! zeroed nodes (`Box::new_zeroed`) whose fields include these types, which
//! is only sound while the all-zero bit pattern stays valid — i.e. while
//! the wrapper is exactly the std atomic.
//!
//! Only the method subset the workspace uses is mirrored; extend as needed.

pub use std::sync::atomic::Ordering;

#[cfg(not(chaos))]
mod imp {
    /// Passthrough alias (instrumented under `--cfg chaos`).
    pub type AtomicBool = std::sync::atomic::AtomicBool;
    /// Passthrough alias (instrumented under `--cfg chaos`).
    pub type AtomicU16 = std::sync::atomic::AtomicU16;
    /// Passthrough alias (instrumented under `--cfg chaos`).
    pub type AtomicU32 = std::sync::atomic::AtomicU32;
    /// Passthrough alias (instrumented under `--cfg chaos`).
    pub type AtomicU64 = std::sync::atomic::AtomicU64;
    /// Passthrough alias (instrumented under `--cfg chaos`).
    pub type AtomicUsize = std::sync::atomic::AtomicUsize;
    /// Passthrough alias (instrumented under `--cfg chaos`).
    pub type AtomicPtr<T> = std::sync::atomic::AtomicPtr<T>;

    /// Passthrough to [`std::sync::atomic::fence`].
    #[inline(always)]
    pub fn fence(order: super::Ordering) {
        std::sync::atomic::fence(order);
    }
}

#[cfg(chaos)]
mod imp {
    use super::Ordering;
    use crate::rt::{yield_point, YieldKind};

    macro_rules! int_atomic {
        ($(#[$doc:meta])* $name:ident, $std:ty, $int:ty) => {
            $(#[$doc])*
            #[repr(transparent)]
            #[derive(Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                /// Creates a new atomic holding `v`.
                #[inline]
                pub const fn new(v: $int) -> Self {
                    Self { inner: <$std>::new(v) }
                }

                /// Instrumented [`load`](std::sync::atomic::AtomicU64::load).
                #[inline]
                pub fn load(&self, order: Ordering) -> $int {
                    yield_point(YieldKind::Load);
                    self.inner.load(order)
                }

                /// Instrumented [`store`](std::sync::atomic::AtomicU64::store).
                #[inline]
                pub fn store(&self, v: $int, order: Ordering) {
                    yield_point(YieldKind::Store);
                    self.inner.store(v, order)
                }

                /// Instrumented [`swap`](std::sync::atomic::AtomicU64::swap).
                #[inline]
                pub fn swap(&self, v: $int, order: Ordering) -> $int {
                    yield_point(YieldKind::Rmw);
                    self.inner.swap(v, order)
                }

                /// Instrumented
                /// [`compare_exchange`](std::sync::atomic::AtomicU64::compare_exchange).
                #[inline]
                pub fn compare_exchange(
                    &self,
                    current: $int,
                    new: $int,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$int, $int> {
                    yield_point(YieldKind::Rmw);
                    self.inner.compare_exchange(current, new, success, failure)
                }

                /// Instrumented
                /// [`compare_exchange_weak`](std::sync::atomic::AtomicU64::compare_exchange_weak).
                #[inline]
                pub fn compare_exchange_weak(
                    &self,
                    current: $int,
                    new: $int,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$int, $int> {
                    yield_point(YieldKind::Rmw);
                    self.inner.compare_exchange_weak(current, new, success, failure)
                }

                /// Non-instrumented exclusive access (no concurrency).
                #[inline]
                pub fn get_mut(&mut self) -> &mut $int {
                    self.inner.get_mut()
                }

                /// Consumes the atomic, returning the value.
                #[inline]
                pub fn into_inner(self) -> $int {
                    self.inner.into_inner()
                }
            }

            impl From<$int> for $name {
                fn from(v: $int) -> Self {
                    Self::new(v)
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    // No yield: Debug is diagnostic, not protocol.
                    self.inner.fmt(f)
                }
            }
        };
    }

    /// Adds the integer-only read-modify-write ops (`AtomicBool` has none).
    macro_rules! int_atomic_arith {
        ($name:ident, $int:ty) => {
            impl $name {
                /// Instrumented
                /// [`fetch_add`](std::sync::atomic::AtomicU64::fetch_add).
                #[inline]
                pub fn fetch_add(&self, v: $int, order: Ordering) -> $int {
                    yield_point(YieldKind::Rmw);
                    self.inner.fetch_add(v, order)
                }

                /// Instrumented
                /// [`fetch_sub`](std::sync::atomic::AtomicU64::fetch_sub).
                #[inline]
                pub fn fetch_sub(&self, v: $int, order: Ordering) -> $int {
                    yield_point(YieldKind::Rmw);
                    self.inner.fetch_sub(v, order)
                }
            }
        };
    }

    int_atomic!(
        /// Instrumented [`std::sync::atomic::AtomicBool`].
        AtomicBool,
        std::sync::atomic::AtomicBool,
        bool
    );
    int_atomic!(
        /// Instrumented [`std::sync::atomic::AtomicU16`].
        AtomicU16,
        std::sync::atomic::AtomicU16,
        u16
    );
    int_atomic!(
        /// Instrumented [`std::sync::atomic::AtomicU32`].
        AtomicU32,
        std::sync::atomic::AtomicU32,
        u32
    );
    int_atomic!(
        /// Instrumented [`std::sync::atomic::AtomicU64`].
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64
    );
    int_atomic!(
        /// Instrumented [`std::sync::atomic::AtomicUsize`].
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize
    );

    int_atomic_arith!(AtomicU16, u16);
    int_atomic_arith!(AtomicU32, u32);
    int_atomic_arith!(AtomicU64, u64);
    int_atomic_arith!(AtomicUsize, usize);

    /// Instrumented [`std::sync::atomic::AtomicPtr`].
    #[repr(transparent)]
    pub struct AtomicPtr<T> {
        inner: std::sync::atomic::AtomicPtr<T>,
    }

    impl<T> AtomicPtr<T> {
        /// Creates a new atomic pointer.
        #[inline]
        pub const fn new(p: *mut T) -> Self {
            Self {
                inner: std::sync::atomic::AtomicPtr::new(p),
            }
        }

        /// Instrumented [`load`](std::sync::atomic::AtomicPtr::load).
        #[inline]
        pub fn load(&self, order: Ordering) -> *mut T {
            yield_point(YieldKind::Load);
            self.inner.load(order)
        }

        /// Instrumented [`store`](std::sync::atomic::AtomicPtr::store).
        #[inline]
        pub fn store(&self, p: *mut T, order: Ordering) {
            yield_point(YieldKind::Store);
            self.inner.store(p, order)
        }

        /// Instrumented
        /// [`compare_exchange`](std::sync::atomic::AtomicPtr::compare_exchange).
        #[inline]
        pub fn compare_exchange(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            yield_point(YieldKind::Rmw);
            self.inner.compare_exchange(current, new, success, failure)
        }

        /// Non-instrumented exclusive access (no concurrency).
        #[inline]
        pub fn get_mut(&mut self) -> &mut *mut T {
            self.inner.get_mut()
        }
    }

    impl<T> Default for AtomicPtr<T> {
        fn default() -> Self {
            Self::new(std::ptr::null_mut())
        }
    }

    impl<T> std::fmt::Debug for AtomicPtr<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.inner.fmt(f)
        }
    }

    /// Instrumented [`std::sync::atomic::fence`].
    #[inline]
    pub fn fence(order: Ordering) {
        yield_point(YieldKind::Fence);
        std::sync::atomic::fence(order);
    }
}

pub use imp::{fence, AtomicBool, AtomicPtr, AtomicU16, AtomicU32, AtomicU64, AtomicUsize};
