//! A small-history linearizability checker for set operations.
//!
//! Model tests record every `insert`/`contains` a virtual thread performs —
//! with schedule-step timestamps — into a [`Recorder`], then ask
//! [`check_set_history`] whether the completed history is linearizable
//! against the obvious sequential set semantics (`std::collections::BTreeSet`
//! as the reference model): is there a total order of the operations,
//! consistent with real-time precedence, under which every returned value is
//! what the sequential set would have returned?
//!
//! The checker is the classic Wing & Gong search, memoized on the set of
//! already-linearized operations (sound here because a set's state is the
//! union of the inserted keys, independent of their order). Intended for
//! histories of 2–4 threads and a couple of operations each — exactly the
//! regime where exhaustive schedule exploration is feasible too.

use std::collections::{BTreeSet, HashSet};
use std::sync::Mutex;

/// One completed set operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Virtual thread that performed the operation.
    pub thread: usize,
    /// The operation and its key.
    pub op: Op,
    /// The value the implementation returned.
    pub returned: bool,
    /// Schedule step at invocation (before the call).
    pub invoke: u64,
    /// Schedule step at response (after the call returned).
    pub ret: u64,
}

/// A set operation on an integer-tuple key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// `insert(key)` returning "was absent".
    Insert(Vec<u64>),
    /// `contains(key)`.
    Contains(Vec<u64>),
    /// `remove(key)` returning "was present".
    Remove(Vec<u64>),
}

/// The current logical time for history timestamps: the schedule step count
/// inside a model run, a global monotonic counter outside.
pub fn timestamp() -> u64 {
    crate::rt::current_steps().unwrap_or_else(crate::rt::global_clock)
}

/// Thread-safe event log for one model execution.
///
/// Locking is uncontended by construction: inside a model run only one
/// virtual thread executes at a time.
#[derive(Debug, Default)]
pub struct Recorder {
    events: Mutex<Vec<Event>>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` as operation `op` on behalf of `thread`, recording
    /// invocation/response timestamps around it, and returns `f`'s result.
    pub fn run(&self, thread: usize, op: Op, f: impl FnOnce() -> bool) -> bool {
        let invoke = timestamp();
        let returned = f();
        let ret = timestamp();
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Event {
                thread,
                op,
                returned,
                invoke,
                ret,
            });
        returned
    }

    /// Consumes the recorder, returning the recorded history.
    pub fn into_history(self) -> Vec<Event> {
        self.events.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Checks that `history` is linearizable with respect to sequential set
/// semantics. Returns `Err` with a human-readable explanation otherwise.
pub fn check_set_history(history: &[Event]) -> Result<(), String> {
    assert!(
        history.len() <= 24,
        "history of {} events is too large for exhaustive linearization",
        history.len()
    );
    let n = history.len();
    if n == 0 {
        return Ok(());
    }
    let all: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let mut contents: BTreeSet<Vec<u64>> = BTreeSet::new();
    let mut dead: HashSet<(u32, BTreeSet<Vec<u64>>)> = HashSet::new();
    if dfs(history, 0, all, &mut contents, &mut dead) {
        Ok(())
    } else {
        let mut msg = String::from("history is not linearizable:\n");
        for e in history {
            let (name, key) = match &e.op {
                Op::Insert(k) => ("insert", k),
                Op::Contains(k) => ("contains", k),
                Op::Remove(k) => ("remove", k),
            };
            msg.push_str(&format!(
                "  thread {} {} {:?} -> {} [{}..{}]\n",
                e.thread, name, key, e.returned, e.invoke, e.ret
            ));
        }
        Err(msg)
    }
}

fn dfs(
    history: &[Event],
    done: u32,
    all: u32,
    contents: &mut BTreeSet<Vec<u64>>,
    dead: &mut HashSet<(u32, BTreeSet<Vec<u64>>)>,
) -> bool {
    if done == all {
        return true;
    }
    // Memoized on (linearized-set, state): with removes in the history the
    // state is no longer a function of *which* operations linearized (an
    // insert/remove pair commutes to different contents), so the state is
    // part of the key. Histories are tiny; the clone is cheap.
    if dead.contains(&(done, contents.clone())) {
        return false;
    }
    // The earliest response among pending operations bounds which of them
    // may linearize next: anything invoked after that response must wait.
    let min_pending_ret = history
        .iter()
        .enumerate()
        .filter(|(i, _)| done & (1 << i) == 0)
        .map(|(_, e)| e.ret)
        .min()
        .expect("pending operation exists");
    for i in 0..history.len() {
        if done & (1 << i) != 0 {
            continue;
        }
        let e = &history[i];
        if e.invoke > min_pending_ret {
            continue; // strictly after some pending op completed
        }
        // `inserted`/`removed`: the key this linearization step adds to /
        // drops from the state, undone on backtrack.
        let (expected, inserted, removed) = match &e.op {
            Op::Insert(k) => {
                let absent = !contents.contains(k);
                (absent, absent.then(|| k.clone()), None)
            }
            Op::Contains(k) => (contents.contains(k), None, None),
            Op::Remove(k) => {
                let present = contents.contains(k);
                (present, None, present.then(|| k.clone()))
            }
        };
        if expected != e.returned {
            continue;
        }
        if let Some(k) = &inserted {
            contents.insert(k.clone());
        }
        if let Some(k) = &removed {
            contents.remove(k);
        }
        if dfs(history, done | (1 << i), all, contents, dead) {
            return true;
        }
        if let Some(k) = &inserted {
            contents.remove(k);
        }
        if let Some(k) = &removed {
            contents.insert(k.clone());
        }
    }
    dead.insert((done, contents.clone()));
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ins(thread: usize, k: u64, returned: bool, invoke: u64, ret: u64) -> Event {
        Event {
            thread,
            op: Op::Insert(vec![k]),
            returned,
            invoke,
            ret,
        }
    }

    fn has(thread: usize, k: u64, returned: bool, invoke: u64, ret: u64) -> Event {
        Event {
            thread,
            op: Op::Contains(vec![k]),
            returned,
            invoke,
            ret,
        }
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert!(check_set_history(&[]).is_ok());
    }

    #[test]
    fn sequential_history_checks() {
        let h = vec![
            ins(0, 1, true, 0, 1),
            has(0, 1, true, 2, 3),
            ins(0, 1, false, 4, 5),
        ];
        assert!(check_set_history(&h).is_ok());
    }

    #[test]
    fn duplicate_insert_race_one_winner_is_linearizable() {
        // Two overlapping inserts of the same key: exactly one may win.
        let h = vec![ins(0, 7, true, 0, 10), ins(1, 7, false, 1, 9)];
        assert!(check_set_history(&h).is_ok());
    }

    #[test]
    fn duplicate_insert_race_two_winners_is_not() {
        let h = vec![ins(0, 7, true, 0, 10), ins(1, 7, true, 1, 9)];
        assert!(check_set_history(&h).is_err());
    }

    #[test]
    fn contains_must_observe_preceding_insert() {
        // insert completed strictly before contains was invoked, yet
        // contains returned false: a real-time violation.
        let h = vec![ins(0, 3, true, 0, 1), has(1, 3, false, 5, 6)];
        assert!(check_set_history(&h).is_err());
    }

    #[test]
    fn concurrent_contains_may_miss_overlapping_insert() {
        let h = vec![ins(0, 3, true, 0, 10), has(1, 3, false, 2, 4)];
        assert!(check_set_history(&h).is_ok());
    }

    #[test]
    fn three_thread_mixed_history() {
        let h = vec![
            ins(0, 1, true, 0, 4),
            ins(1, 1, false, 1, 5),
            has(2, 1, true, 6, 7),
            ins(2, 2, true, 8, 9),
            has(0, 2, true, 10, 12),
            has(1, 9, false, 10, 11),
        ];
        assert!(check_set_history(&h).is_ok());
    }

    #[test]
    fn lost_update_shape_is_rejected() {
        // Both inserts claim to have inserted, sequentially: impossible.
        let h = vec![ins(0, 5, true, 0, 1), ins(1, 5, true, 2, 3)];
        assert!(check_set_history(&h).is_err());
    }

    fn rem(thread: usize, k: u64, returned: bool, invoke: u64, ret: u64) -> Event {
        Event {
            thread,
            op: Op::Remove(vec![k]),
            returned,
            invoke,
            ret,
        }
    }

    #[test]
    fn duplicate_remove_race_one_winner_is_linearizable() {
        let h = vec![
            ins(0, 7, true, 0, 1),
            rem(0, 7, true, 2, 10),
            rem(1, 7, false, 3, 9),
        ];
        assert!(check_set_history(&h).is_ok());
    }

    #[test]
    fn duplicate_remove_race_two_winners_is_not() {
        let h = vec![
            ins(0, 7, true, 0, 1),
            rem(0, 7, true, 2, 10),
            rem(1, 7, true, 3, 9),
        ];
        assert!(check_set_history(&h).is_err());
    }

    #[test]
    fn contains_must_observe_preceding_remove() {
        // remove completed strictly before contains was invoked, yet
        // contains still found the key: a real-time violation.
        let h = vec![
            ins(0, 3, true, 0, 1),
            rem(0, 3, true, 2, 3),
            has(1, 3, true, 5, 6),
        ];
        assert!(check_set_history(&h).is_err());
    }

    #[test]
    fn concurrent_contains_may_miss_overlapping_remove() {
        let h = vec![
            ins(0, 3, true, 0, 1),
            rem(0, 3, true, 2, 10),
            has(1, 3, false, 4, 6),
        ];
        assert!(check_set_history(&h).is_ok());
    }

    #[test]
    fn remove_reinsert_interleaving_tracks_state() {
        // insert -> remove -> insert of the same key: the second insert must
        // report "was absent" again, and order matters for the state (this
        // is what forces memoization on (done, contents), not done alone).
        let h = vec![
            ins(0, 4, true, 0, 1),
            rem(1, 4, true, 2, 3),
            ins(0, 4, true, 4, 5),
            has(1, 4, true, 6, 7),
        ];
        assert!(check_set_history(&h).is_ok());
    }
}
