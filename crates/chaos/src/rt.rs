//! The cooperative scheduler behind [`crate::model`].
//!
//! # How determinism is achieved
//!
//! Every *virtual thread* of a model run is backed by a real OS thread, but
//! at most one of them executes user code at any instant: all others are
//! parked on a condition variable waiting for the scheduler's baton. At
//! every *yield point* — each instrumented atomic access, fence, explicit
//! [`crate::checkpoint`], spawn, join and thread exit — the running thread
//! hands the baton back, the scheduler folds the event into a running
//! schedule-trace hash, picks the next runnable thread from a seeded PRNG
//! (or PCT priorities, see [`crate::Strategy`]) and wakes it.
//!
//! Because user code is fully serialized, every scheduling decision is a
//! pure function of the seed and the program's own (now deterministic)
//! behaviour: replaying a seed replays the identical interleaving, which is
//! what makes a failing schedule reproducible in CI and on a laptop alike.
//!
//! The scheduler is compiled unconditionally; what `--cfg chaos` controls
//! is only how many yield points exist (see [`crate::sync`]). Without the
//! cfg, model runs still work but interleave only at spawn/join/yield
//! granularity.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::{Config, Outcome, Strategy};

/// Hard cap on virtual threads per model run (histories beyond a handful of
/// threads are intractable to explore anyway).
pub const MAX_THREADS: usize = 16;

/// What kind of event a yield point reports; folded into the trace hash.
// Most variants are only constructed by the instrumented (`--cfg chaos`)
// atomics in `crate::sync`.
#[cfg_attr(not(chaos), allow(dead_code))]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum YieldKind {
    /// An atomic load.
    Load = 1,
    /// An atomic store.
    Store = 2,
    /// An atomic read-modify-write (CAS, swap, fetch-add, ...).
    Rmw = 3,
    /// A memory fence.
    Fence = 4,
    /// A spin-loop hint / `yield_now`: strategies may deprioritize the
    /// spinner so the thread it waits for gets to run.
    Spin = 5,
    /// An explicit labeled protocol checkpoint.
    Checkpoint = 6,
    /// A `chaos::thread::spawn`.
    Spawn = 7,
    /// A `JoinHandle::join`.
    Join = 8,
}

/// Scheduling status of one virtual thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Runnable,
    /// Waiting for the thread with the given id to finish.
    Blocked(usize),
    Finished,
}

/// Panic payload used to unwind virtual threads when a run aborts (another
/// thread failed, or the step budget was exhausted). Recognized — and not
/// reported as a user failure — by the virtual-thread trampoline.
pub(crate) struct ChaosAbort;

struct SchedState {
    status: Vec<Status>,
    /// The thread currently holding the baton (`None` once the run ended).
    active: Option<usize>,
    /// splitmix64 state; all scheduling randomness comes from here.
    rng: u64,
    strategy: Strategy,
    /// PCT priorities (higher runs first); unused by `Strategy::Random`.
    priorities: Vec<u64>,
    /// PCT change points: step numbers at which the running thread's
    /// priority drops below everything seen so far.
    change_points: Vec<u64>,
    /// Water mark handed out on deprioritization; strictly decreasing.
    low_water: u64,
    steps: u64,
    max_steps: u64,
    trace: u64,
    /// First failure observed (a user panic, deadlock or budget blow-up).
    failure: Option<String>,
    abort: bool,
    unfinished: usize,
}

impl SchedState {
    fn next_rand(&mut self) -> u64 {
        // splitmix64; private to the scheduler (test workloads use
        // `workloads::rng` instead).
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn fold_trace(&mut self, x: u64) {
        self.trace = (self.trace ^ x)
            .wrapping_mul(0x100_0000_01B3)
            .rotate_left(17);
    }

    /// Picks the next thread to grant the baton to, or `None` when nothing
    /// is runnable. Does not itself detect deadlock — callers decide what a
    /// `None` means in their context.
    fn pick_next(&mut self, kind: YieldKind, me: usize) -> Option<usize> {
        match self.strategy {
            Strategy::Random => {
                let runnable: Vec<usize> = (0..self.status.len())
                    .filter(|&t| self.status[t] == Status::Runnable)
                    .collect();
                if runnable.is_empty() {
                    return None;
                }
                Some(runnable[(self.next_rand() % runnable.len() as u64) as usize])
            }
            Strategy::Pct { .. } => {
                // Priority-based (PCT): the highest-priority runnable thread
                // runs, except that change points and spin hints demote the
                // current thread below everything else (the latter keeps
                // optimistic spin loops from starving their release).
                if self.change_points.binary_search(&self.steps).is_ok() || kind == YieldKind::Spin
                {
                    self.low_water -= 1;
                    if me < self.priorities.len() {
                        self.priorities[me] = self.low_water;
                    }
                }
                (0..self.status.len())
                    .filter(|&t| self.status[t] == Status::Runnable)
                    .max_by_key(|&t| self.priorities[t])
            }
        }
    }
}

pub(crate) struct Shared {
    state: Mutex<SchedState>,
    cv: Condvar,
    /// OS-thread handles of every virtual thread, joined by `run_one`.
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// The identity of the virtual thread executing on this OS thread, if any.
struct Ctx {
    shared: Arc<Shared>,
    id: usize,
}

thread_local! {
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Whether the calling thread is a virtual thread of an active model run.
pub fn in_model() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

fn with_current<R>(f: impl FnOnce(&Ctx) -> R) -> Option<R> {
    CURRENT.with(|c| c.borrow().as_ref().map(f))
}

/// The current schedule step count, if inside a model run. Used for
/// history timestamps (see [`crate::linearize`]).
pub(crate) fn current_steps() -> Option<u64> {
    with_current(|ctx| ctx.shared.lock_state().steps)
}

/// Monotonic fallback clock for history timestamps outside model runs.
pub(crate) fn global_clock() -> u64 {
    static CLOCK: AtomicU64 = AtomicU64::new(0);
    CLOCK.fetch_add(1, Relaxed)
}

/// A yield point: hand the baton to the scheduler. No-op outside model runs.
#[inline]
pub fn yield_point(kind: YieldKind) {
    yield_labeled(kind, 0);
}

/// A yield point carrying a label (hashed into the schedule trace).
#[inline]
pub fn yield_labeled(kind: YieldKind, label: u64) {
    // Destructors running during unwinding (e.g. an iterator dropped by a
    // failing assertion) may touch instrumented atomics; re-entering the
    // scheduler there would raise a second panic inside a Drop and abort
    // the process. Let the original panic propagate instead.
    if std::thread::panicking() {
        return;
    }
    let ctx = CURRENT.with(|c| c.borrow().as_ref().map(|ctx| (ctx.shared.clone(), ctx.id)));
    if let Some((shared, id)) = ctx {
        shared.switch(id, kind, label);
    }
}

#[cfg_attr(not(chaos), allow(dead_code))]
fn hash_label(label: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in label.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Labeled protocol checkpoint (used by `chaos::checkpoint`).
#[cfg_attr(not(chaos), allow(dead_code))]
#[inline]
pub fn checkpoint_labeled(label: &str) {
    if in_model() {
        yield_labeled(YieldKind::Checkpoint, hash_label(label));
    }
}

impl Shared {
    fn lock_state(&self) -> MutexGuard<'_, SchedState> {
        // The scheduler mutex only ever guards scheduler bookkeeping;
        // tolerate poisoning (a panicking virtual thread never holds it
        // while unwinding user code, but be defensive).
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Core baton hand-off: fold the event, pick a successor, wait until
    /// this thread is granted again. Panics with [`ChaosAbort`] when the
    /// run is being torn down.
    fn switch(self: &Arc<Self>, me: usize, kind: YieldKind, label: u64) {
        let mut st = self.lock_state();
        if st.abort {
            drop(st);
            std::panic::panic_any(ChaosAbort);
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            let msg = format!(
                "schedule budget exceeded after {} steps (possible livelock or \
                 unbounded spin loop)",
                st.steps - 1
            );
            self.fail_locked(&mut st, msg);
            drop(st);
            std::panic::panic_any(ChaosAbort);
        }
        st.fold_trace((me as u64) << 8 | kind as u64);
        if label != 0 {
            st.fold_trace(label);
        }
        // `me` is runnable, so a successor always exists.
        let next = st.pick_next(kind, me).expect("runnable thread exists");
        st.fold_trace(next as u64);
        st.active = Some(next);
        if next != me {
            self.cv.notify_all();
            while st.active != Some(me) && !st.abort {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            if st.abort {
                drop(st);
                std::panic::panic_any(ChaosAbort);
            }
        }
    }

    /// Records the first failure and wakes every parked thread for teardown.
    fn fail_locked(&self, st: &mut SchedState, msg: String) {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.abort = true;
        st.active = None;
        self.cv.notify_all();
    }

    /// Blocks `me` until the virtual thread `target` finishes.
    fn join_wait(self: &Arc<Self>, me: usize, target: usize) {
        let mut st = self.lock_state();
        if st.abort {
            drop(st);
            std::panic::panic_any(ChaosAbort);
        }
        st.steps += 1;
        st.fold_trace((me as u64) << 8 | YieldKind::Join as u64);
        if st.status[target] != Status::Finished {
            st.status[me] = Status::Blocked(target);
            match st.pick_next(YieldKind::Join, me) {
                Some(next) => {
                    st.fold_trace(next as u64);
                    st.active = Some(next);
                    self.cv.notify_all();
                }
                None => {
                    let msg = format!(
                        "deadlock: thread {me} joined thread {target} but no \
                         thread is runnable"
                    );
                    self.fail_locked(&mut st, msg);
                    drop(st);
                    std::panic::panic_any(ChaosAbort);
                }
            }
            while st.active != Some(me) && !st.abort {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            if st.abort {
                drop(st);
                std::panic::panic_any(ChaosAbort);
            }
        }
    }

    /// Registers a new virtual thread; returns its id.
    fn register(&self) -> usize {
        let mut st = self.lock_state();
        let id = st.status.len();
        assert!(
            id < MAX_THREADS,
            "chaos model exceeded {MAX_THREADS} virtual threads"
        );
        st.status.push(Status::Runnable);
        let p = st.next_rand();
        st.priorities.push(p | (1 << 62)); // well above any low-water mark
        st.unfinished += 1;
        id
    }

    /// Marks `me` finished, unblocks joiners, passes the baton on.
    fn finish(self: &Arc<Self>, me: usize) {
        let mut st = self.lock_state();
        st.status[me] = Status::Finished;
        st.unfinished -= 1;
        for t in 0..st.status.len() {
            if st.status[t] == Status::Blocked(me) {
                st.status[t] = Status::Runnable;
            }
        }
        if st.abort || st.unfinished == 0 {
            st.active = None;
            self.cv.notify_all();
            return;
        }
        match st.pick_next(YieldKind::Join, me) {
            Some(next) => {
                st.fold_trace(0xF1A1 ^ (me as u64) << 8);
                st.fold_trace(next as u64);
                st.active = Some(next);
                self.cv.notify_all();
            }
            None => {
                let blocked: Vec<usize> = (0..st.status.len())
                    .filter(|&t| matches!(st.status[t], Status::Blocked(_)))
                    .collect();
                let msg = format!(
                    "deadlock: thread {me} finished but threads {blocked:?} \
                     remain blocked with nothing runnable"
                );
                self.fail_locked(&mut st, msg);
            }
        }
    }

    fn fail_and_finish(self: &Arc<Self>, me: usize, msg: String) {
        {
            let mut st = self.lock_state();
            self.fail_locked(&mut st, format!("thread {me} panicked: {msg}"));
        }
        self.finish(me);
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Trampoline every virtual thread's OS thread runs: wait for the first
/// baton grant, install the thread-local identity, run the body, tear down.
fn vthread_main(shared: Arc<Shared>, id: usize, body: impl FnOnce()) {
    {
        let mut st = shared.lock_state();
        while st.active != Some(id) && !st.abort {
            st = shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.abort {
            drop(st);
            shared.finish(id);
            return;
        }
    }
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            shared: shared.clone(),
            id,
        })
    });
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
    CURRENT.with(|c| *c.borrow_mut() = None);
    match res {
        Ok(()) => shared.finish(id),
        Err(p) if p.is::<ChaosAbort>() => shared.finish(id),
        Err(p) => shared.fail_and_finish(id, panic_message(p)),
    }
}

/// The result slot a virtual thread writes its return value into.
pub(crate) type ResultSlot<T> = Arc<Mutex<Option<T>>>;

/// Spawns a virtual thread inside the current model run.
pub(crate) fn spawn_vthread<T: Send + 'static>(
    f: impl FnOnce() -> T + Send + 'static,
) -> Option<(Arc<Shared>, usize, ResultSlot<T>)> {
    let ctx = CURRENT.with(|c| c.borrow().as_ref().map(|ctx| (ctx.shared.clone(), ctx.id)));
    let (shared, me) = ctx?;
    let id = shared.register();
    let slot = Arc::new(Mutex::new(None));
    let (sh, sl) = (shared.clone(), slot.clone());
    let handle = std::thread::Builder::new()
        .name(format!("chaos-vt-{id}"))
        .spawn(move || {
            let sl2 = sl.clone();
            vthread_main(sh, id, move || {
                let v = f();
                *sl2.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
            })
        })
        .expect("failed to spawn chaos virtual thread");
    shared
        .handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(handle);
    // Give the scheduler the chance to run the child right away (or not):
    // spawn itself is an interleaving decision.
    shared.switch(me, YieldKind::Spawn, id as u64);
    Some((shared, id, slot))
}

/// Scheduler-aware join used by `chaos::thread::JoinHandle`.
pub(crate) fn join_vthread(shared: &Arc<Shared>, me_target: usize) {
    let me = with_current(|ctx| ctx.id).expect("join of a virtual thread outside its model run");
    shared.join_wait(me, me_target);
}

/// Runs `f` once under `seed` and returns the outcome. The body runs as
/// virtual thread 0; the calling thread only orchestrates.
pub(crate) fn run_one(cfg: &Config, seed: u64, f: Arc<dyn Fn() + Send + Sync>) -> Outcome {
    assert!(
        !in_model(),
        "chaos::model may not be nested inside another model run"
    );
    let change_points = {
        // Pre-draw PCT change points from their own stream so they do not
        // perturb the per-step randomness.
        let mut s = SchedState {
            status: Vec::new(),
            active: None,
            rng: seed ^ 0xD6E8_FEB8_6659_FD93,
            strategy: cfg.strategy,
            priorities: Vec::new(),
            change_points: Vec::new(),
            low_water: 1 << 32,
            steps: 0,
            max_steps: 0,
            trace: 0,
            failure: None,
            abort: false,
            unfinished: 0,
        };
        let mut cps: Vec<u64> = match cfg.strategy {
            Strategy::Random => Vec::new(),
            Strategy::Pct { depth } => (0..depth)
                .map(|_| 1 + s.next_rand() % cfg.pct_expected_steps.max(1))
                .collect(),
        };
        cps.sort_unstable();
        cps
    };
    let shared = Arc::new(Shared {
        state: Mutex::new(SchedState {
            status: Vec::new(),
            active: None,
            rng: seed,
            strategy: cfg.strategy,
            priorities: Vec::new(),
            change_points,
            low_water: 1 << 32,
            steps: 0,
            max_steps: cfg.max_steps,
            trace: seed ^ 0x9E37_79B9_7F4A_7C15,
            failure: None,
            abort: false,
            unfinished: 0,
        }),
        cv: Condvar::new(),
        handles: Mutex::new(Vec::new()),
    });

    let root = shared.register();
    debug_assert_eq!(root, 0);
    shared.lock_state().active = Some(root);
    let sh = shared.clone();
    let handle = std::thread::Builder::new()
        .name("chaos-vt-0".into())
        .spawn(move || vthread_main(sh, root, move || f()))
        .expect("failed to spawn chaos root thread");
    shared
        .handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(handle);

    // Join every OS thread; the list can grow while we drain it (virtual
    // threads spawn more virtual threads), so loop until it stays empty.
    loop {
        let batch: Vec<_> = {
            let mut hs = shared.handles.lock().unwrap_or_else(|e| e.into_inner());
            hs.drain(..).collect()
        };
        if batch.is_empty() {
            break;
        }
        for h in batch {
            let _ = h.join();
        }
    }

    let st = shared.lock_state();
    Outcome {
        seed,
        trace_hash: st.trace,
        steps: st.steps,
        threads: st.status.len(),
        failure: st.failure.clone(),
    }
}
