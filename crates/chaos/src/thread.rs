//! Virtual threads: `spawn`/`join` that route through the chaos scheduler
//! inside a model run and fall back to real `std::thread`s outside one.
//!
//! Model-test bodies use this module exclusively, so the same test code
//! works in all three execution modes (instrumented model run, degenerate
//! model run without `--cfg chaos`, plain test process).

use std::sync::{Arc, Mutex};

use crate::rt;

/// Handle to a thread started with [`spawn`].
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

enum Inner<T> {
    /// A real OS thread (spawned outside any model run).
    Std(std::thread::JoinHandle<T>),
    /// A virtual thread of a model run.
    Virtual {
        shared: Arc<rt::Shared>,
        id: usize,
        slot: Arc<Mutex<Option<T>>>,
    },
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    ///
    /// Inside a model run this blocks *virtually*: the scheduler simply
    /// stops granting this thread until the target finishes, so a join is
    /// itself an explored scheduling event. Panics of the joined thread
    /// abort the model run (and are reported with the failing seed).
    pub fn join(self) -> T {
        match self.inner {
            Inner::Std(h) => match h.join() {
                Ok(v) => v,
                Err(p) => std::panic::resume_unwind(p),
            },
            Inner::Virtual { shared, id, slot } => {
                rt::join_vthread(&shared, id);
                let v = slot.lock().unwrap_or_else(|e| e.into_inner()).take();
                match v {
                    Some(v) => v,
                    // The child finished without a value: it panicked and
                    // the run is aborting — unwind this thread too.
                    None => std::panic::panic_any(crate::rt::ChaosAbort),
                }
            }
        }
    }
}

/// Spawns a thread. Inside a model run this creates a *virtual* thread
/// whose every instrumented memory access is a scheduling decision;
/// outside, it is `std::thread::spawn`.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    if rt::in_model() {
        let (shared, id, slot) = rt::spawn_vthread(f).expect("in_model checked");
        JoinHandle {
            inner: Inner::Virtual { shared, id, slot },
        }
    } else {
        JoinHandle {
            inner: Inner::Std(std::thread::spawn(f)),
        }
    }
}

/// Cooperative yield: a scheduling point inside a model run (flagged as a
/// spin so PCT-style strategies deprioritize the yielder), a plain
/// [`std::thread::yield_now`] outside.
#[inline]
pub fn yield_now() {
    if rt::in_model() {
        rt::yield_point(rt::YieldKind::Spin);
    } else {
        std::thread::yield_now();
    }
}
