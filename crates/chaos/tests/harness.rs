//! Self-tests of the schedule-exploration harness itself: determinism of
//! the trace hash, seed-to-seed schedule diversity, the executor's ability
//! to find a planted atomicity bug, and livelock/budget detection.
//!
//! Tests marked `#[cfg(chaos)]` need the instrumented atomics
//! (`RUSTFLAGS="--cfg chaos"`); the rest also run in plain builds, where
//! model runs degenerate to spawn/join-granularity interleaving.

use std::sync::Arc;

#[cfg(chaos)]
use chaos::find_failure;
use chaos::sync::{AtomicU64, Ordering::Relaxed};
use chaos::{check, Config};

/// A two-thread workload with enough shared accesses for schedules to vary.
fn contended_counter_body() {
    let c = Arc::new(AtomicU64::new(0));
    let c2 = c.clone();
    let t = chaos::thread::spawn(move || {
        for _ in 0..4 {
            c2.fetch_add(1, Relaxed);
        }
    });
    for _ in 0..4 {
        c.fetch_add(1, Relaxed);
    }
    t.join();
    assert_eq!(c.load(Relaxed), 8);
}

#[test]
fn same_seed_same_trace_hash() {
    let cfg = Config::default();
    for seed in 0..8 {
        let a = check(&cfg, seed, contended_counter_body);
        let b = check(&cfg, seed, contended_counter_body);
        assert!(a.failure.is_none(), "unexpected failure: {:?}", a.failure);
        assert_eq!(
            (a.trace_hash, a.steps, a.threads),
            (b.trace_hash, b.steps, b.threads),
            "seed {seed} must replay the identical schedule"
        );
    }
}

#[cfg(chaos)]
#[test]
fn different_seeds_explore_different_schedules() {
    let cfg = Config::default();
    let hashes: std::collections::HashSet<u64> = (0..32)
        .map(|seed| check(&cfg, seed, contended_counter_body).trace_hash)
        .collect();
    // With 8 interleaved fetch_adds there are far more than 32 schedules;
    // the seeded PRNG must not collapse them onto a handful.
    assert!(
        hashes.len() >= 16,
        "expected schedule diversity across seeds, got {} distinct \
         traces out of 32",
        hashes.len()
    );
}

/// The canonical lost-update bug: `load` then `store` instead of an atomic
/// RMW. Only an unlucky interleaving loses an increment, so finding it
/// proves the executor actually explores interleavings between atomic ops.
#[cfg(chaos)]
#[test]
fn finds_lost_update_in_nonatomic_increment() {
    let failing = find_failure(&Config::default(), 0..64, || {
        let c = Arc::new(AtomicU64::new(0));
        let c2 = c.clone();
        let t = chaos::thread::spawn(move || {
            let v = c2.load(Relaxed);
            c2.store(v + 1, Relaxed);
        });
        let v = c.load(Relaxed);
        c.store(v + 1, Relaxed);
        t.join();
        assert_eq!(c.load(Relaxed), 2, "lost update");
    });
    let out = failing.expect("the load/store race must be caught within 64 seeds");
    assert!(
        out.failure.as_deref().unwrap_or("").contains("lost update"),
        "failure should come from the workload assertion: {:?}",
        out.failure
    );
    // The failing seed must replay: same failure, same trace.
    let replay = check(&Config::default(), out.seed, || {
        let c = Arc::new(AtomicU64::new(0));
        let c2 = c.clone();
        let t = chaos::thread::spawn(move || {
            let v = c2.load(Relaxed);
            c2.store(v + 1, Relaxed);
        });
        let v = c.load(Relaxed);
        c.store(v + 1, Relaxed);
        t.join();
        assert_eq!(c.load(Relaxed), 2, "lost update");
    });
    assert_eq!(replay.trace_hash, out.trace_hash);
    assert!(replay.failure.is_some());
}

#[test]
fn join_returns_the_thread_value() {
    chaos::model(0..4, || {
        let t = chaos::thread::spawn(|| 41 + 1);
        assert_eq!(t.join(), 42);
    });
}

#[test]
fn nested_spawn_and_join() {
    chaos::model(0..8, || {
        let outer = chaos::thread::spawn(|| {
            let inner = chaos::thread::spawn(|| 7u64);
            inner.join() * 6
        });
        assert_eq!(outer.join(), 42);
    });
}

#[cfg(chaos)]
#[test]
fn step_budget_catches_livelock() {
    let cfg = Config {
        max_steps: 200,
        ..Config::default()
    };
    let out = check(&cfg, 0, || {
        let flag = Arc::new(AtomicU64::new(0));
        // Nobody ever sets the flag: an unbounded spin must trip the budget
        // instead of hanging the test process.
        while flag.load(Relaxed) == 0 {
            chaos::hint::spin_loop();
        }
    });
    let msg = out.failure.expect("livelock must be reported");
    assert!(
        msg.contains("schedule budget"),
        "unexpected failure message: {msg}"
    );
}

#[test]
fn model_panic_names_the_seed() {
    let res = std::panic::catch_unwind(|| {
        chaos::model(17..18, || {
            panic!("intentional workload failure");
        });
    });
    let err = res.expect_err("model must propagate the failure");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("seed 17"), "missing seed in: {msg}");
    assert!(
        msg.contains("intentional workload failure"),
        "missing workload message in: {msg}"
    );
    assert!(msg.contains("replay"), "missing replay hint in: {msg}");
}

#[test]
fn pct_strategy_runs_clean_workloads() {
    chaos::model_with(&Config::pct(3), 0..16, contended_counter_body);
}

#[cfg(chaos)]
#[test]
fn seqlock_spinners_do_not_starve_the_writer_under_pct() {
    // A reader spinning on an odd version must eventually see the writer's
    // release: PCT demotes spinners, Random is fair in expectation.
    for cfg in [Config::random(), Config::pct(2)] {
        chaos::model_with(&cfg, 0..16, || {
            let v = Arc::new(AtomicU64::new(1)); // starts "locked" (odd)
            let v2 = v.clone();
            let writer = chaos::thread::spawn(move || {
                v2.store(2, Relaxed); // release
            });
            while v.load(Relaxed) & 1 == 1 {
                chaos::hint::spin_loop();
            }
            writer.join();
        });
    }
}
