//! Criterion micro-benchmarks mirroring the paper's Figures 3 and 4 at
//! CI-friendly sizes (the `fig3`/`fig4` binaries run the full paper-style
//! sweeps and print the figures' tables).

use baselines::gbtree::GBTreeSet;
use baselines::global_lock::GlobalLock;
use baselines::splitorder::SplitOrderedSet;
use bench_suite::Contestant;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use specbtree::BTreeSet;
use std::hint::black_box;
use workloads::points::{partition_batches, points_2d, query_sequence};

const SIDE: u64 = 100; // 10_000 elements per run

fn seq_insert(c: &mut Criterion) {
    for ordered in [true, false] {
        let name = if ordered {
            "fig3a_seq_insert_ordered"
        } else {
            "fig3b_seq_insert_random"
        };
        let mut group = c.benchmark_group(name);
        group.throughput(Throughput::Elements(SIDE * SIDE));
        let pts = points_2d(SIDE, ordered, 42);
        for contestant in Contestant::ALL {
            group.bench_function(BenchmarkId::from_parameter(contestant.label()), |b| {
                b.iter(|| {
                    let mut set = contestant.create();
                    for t in &pts {
                        set.insert(black_box(*t));
                    }
                    black_box(set.scan_count())
                })
            });
        }
        group.finish();
    }
}

fn membership(c: &mut Criterion) {
    for ordered in [true, false] {
        let name = if ordered {
            "fig3c_membership_ordered"
        } else {
            "fig3d_membership_random"
        };
        let mut group = c.benchmark_group(name);
        group.throughput(Throughput::Elements(SIDE * SIDE));
        let pts = points_2d(SIDE, ordered, 42);
        let queries = query_sequence(SIDE, ordered, 42);
        for contestant in Contestant::ALL {
            let mut set = contestant.create();
            for t in &pts {
                set.insert(*t);
            }
            group.bench_function(BenchmarkId::from_parameter(contestant.label()), |b| {
                b.iter(|| {
                    let mut found = 0usize;
                    for q in &queries {
                        found += usize::from(set.contains(black_box(q)));
                    }
                    black_box(found)
                })
            });
        }
        group.finish();
    }
}

fn full_scan(c: &mut Criterion) {
    for ordered in [true, false] {
        let name = if ordered {
            "fig3e_scan_after_ordered"
        } else {
            "fig3f_scan_after_random"
        };
        let mut group = c.benchmark_group(name);
        group.throughput(Throughput::Elements(SIDE * SIDE));
        let pts = points_2d(SIDE, ordered, 42);
        for contestant in [
            Contestant::GoogleBTree,
            Contestant::SeqBTree,
            Contestant::BTree,
            Contestant::StlRbtset,
            Contestant::StlHashset,
            Contestant::TbbHashset,
        ] {
            let mut set = contestant.create();
            for t in &pts {
                set.insert(*t);
            }
            group.bench_function(BenchmarkId::from_parameter(contestant.label()), |b| {
                b.iter(|| black_box(set.scan_count()))
            });
        }
        group.finish();
    }
}

fn parallel_insert(c: &mut Criterion) {
    let threads = 4usize;
    for ordered in [true, false] {
        let name = if ordered {
            "fig4_parallel_insert_ordered"
        } else {
            "fig4_parallel_insert_random"
        };
        let mut group = c.benchmark_group(name);
        group.throughput(Throughput::Elements(SIDE * SIDE));
        let pts = points_2d(SIDE, ordered, 42);
        let batches = partition_batches(&pts, threads);

        group.bench_function("btree", |b| {
            b.iter(|| {
                let tree: BTreeSet<2> = BTreeSet::new();
                std::thread::scope(|s| {
                    for batch in &batches {
                        let tree = &tree;
                        s.spawn(move || {
                            let mut h = tree.create_hints();
                            for t in batch {
                                tree.insert_hinted(*t, &mut h);
                            }
                        });
                    }
                });
                black_box(tree.is_empty())
            })
        });
        group.bench_function("google btree (lock)", |b| {
            b.iter(|| {
                let tree = GlobalLock::new(GBTreeSet::new());
                std::thread::scope(|s| {
                    for batch in &batches {
                        let tree = &tree;
                        s.spawn(move || {
                            for t in batch {
                                tree.with(|set| set.insert(*t));
                            }
                        });
                    }
                });
                black_box(tree.with(|s| s.len()))
            })
        });
        group.bench_function("TBB hashset", |b| {
            b.iter(|| {
                let set: SplitOrderedSet<[u64; 2]> = SplitOrderedSet::new();
                std::thread::scope(|s| {
                    for batch in &batches {
                        let set = &set;
                        s.spawn(move || {
                            for t in batch {
                                set.insert(*t);
                            }
                        });
                    }
                });
                black_box(set.len())
            })
        });
        group.finish();
    }
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = seq_insert, membership, full_scan, parallel_insert
}
criterion_main!(benches);
