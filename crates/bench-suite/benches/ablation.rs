//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **node capacity** — the B-tree's per-node key count (cache-line
//!   trade-off the paper tunes);
//! * **hints on/off** — the §3.2 mechanism, on the clustered workload it
//!   targets;
//! * **synchronization cost** — concurrent tree vs its sequential twin on
//!   one thread (the ≤25% overhead §4.1 reports);
//! * **bulk merge** — the specialized `insert_all` (empty-target bulk path)
//!   vs element-wise insertion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use specbtree::seq::SeqBTreeSet;
use specbtree::BTreeSet;
use std::hint::black_box;
use workloads::points::points_2d;

const SIDE: u64 = 100;

fn node_capacity(c: &mut Criterion) {
    let pts = points_2d(SIDE, false, 7);
    let mut group = c.benchmark_group("ablation_node_capacity_random_insert");
    group.throughput(Throughput::Elements(SIDE * SIDE));

    fn run<const C: usize>(pts: &[[u64; 2]]) -> usize {
        let tree: BTreeSet<2, C> = BTreeSet::new();
        for t in pts {
            tree.insert(*t);
        }
        tree.len()
    }

    group.bench_function(BenchmarkId::from_parameter("C=8"), |b| {
        b.iter(|| black_box(run::<8>(&pts)))
    });
    group.bench_function(BenchmarkId::from_parameter("C=16"), |b| {
        b.iter(|| black_box(run::<16>(&pts)))
    });
    group.bench_function(BenchmarkId::from_parameter("C=24"), |b| {
        b.iter(|| black_box(run::<24>(&pts)))
    });
    group.bench_function(BenchmarkId::from_parameter("C=48"), |b| {
        b.iter(|| black_box(run::<48>(&pts)))
    });
    // The gapped leaf layout packs presence bits into a u64 word, capping
    // node capacity at 63; C=96 is only measurable on the ungapped layout.
    #[cfg(not(feature = "gapped"))]
    group.bench_function(BenchmarkId::from_parameter("C=96"), |b| {
        b.iter(|| black_box(run::<96>(&pts)))
    });
    group.finish();
}

fn hints_on_clustered_inserts(c: &mut Criterion) {
    // The paper's §3.2 pattern: evens first, then odds inside covered
    // ranges — the workload hints exist for.
    let evens: Vec<[u64; 2]> = (0..SIDE * SIDE / 2)
        .map(|i| [i / 50, (i % 50) * 2])
        .collect();
    let odds: Vec<[u64; 2]> = (0..SIDE * SIDE / 2)
        .map(|i| [i / 50, (i % 50) * 2 + 1])
        .collect();
    let mut group = c.benchmark_group("ablation_hints_clustered_insert");
    group.throughput(Throughput::Elements(SIDE * SIDE));

    group.bench_function("hinted", |b| {
        b.iter(|| {
            let tree: BTreeSet<2> = BTreeSet::new();
            let mut h = tree.create_hints();
            for t in evens.iter().chain(&odds) {
                tree.insert_hinted(*t, &mut h);
            }
            black_box(h.stats.insert_hits)
        })
    });
    group.bench_function("unhinted", |b| {
        b.iter(|| {
            let tree: BTreeSet<2> = BTreeSet::new();
            for t in evens.iter().chain(&odds) {
                tree.insert(*t);
            }
            black_box(tree.is_empty())
        })
    });
    group.finish();
}

fn synchronization_cost(c: &mut Criterion) {
    let pts = points_2d(SIDE, true, 7);
    let mut group = c.benchmark_group("ablation_sync_overhead_ordered_insert");
    group.throughput(Throughput::Elements(SIDE * SIDE));

    group.bench_function("concurrent tree (1 thread)", |b| {
        b.iter(|| {
            let tree: BTreeSet<2> = BTreeSet::new();
            for t in &pts {
                tree.insert(*t);
            }
            black_box(tree.is_empty())
        })
    });
    group.bench_function("sequential twin", |b| {
        b.iter(|| {
            let mut tree: SeqBTreeSet<2> = SeqBTreeSet::new();
            for t in &pts {
                tree.insert(*t);
            }
            black_box(tree.len())
        })
    });
    group.finish();
}

fn bulk_merge(c: &mut Criterion) {
    let src: BTreeSet<2> = BTreeSet::from_sorted(points_2d(SIDE, true, 0));
    let mut group = c.benchmark_group("ablation_merge_into_empty");
    group.throughput(Throughput::Elements(SIDE * SIDE));

    group.bench_function("specialized insert_all (bulk path)", |b| {
        b.iter(|| {
            let dst: BTreeSet<2> = BTreeSet::new();
            dst.insert_all(&src);
            black_box(dst.is_empty())
        })
    });
    group.bench_function("element-wise inserts", |b| {
        b.iter(|| {
            let dst: BTreeSet<2> = BTreeSet::new();
            for t in src.iter() {
                dst.insert(t);
            }
            black_box(dst.is_empty())
        })
    });
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = node_capacity, hints_on_clustered_inserts, synchronization_cost, bulk_merge
}
criterion_main!(benches);
