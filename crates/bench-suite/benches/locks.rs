//! Lock micro-benchmarks backing the paper's §3.1 argument: an optimistic
//! read lease performs **no store**, so its read path stays cheap where
//! classical read-write locks pay an atomic RMW to register the reader
//! (and, on multi-socket hardware, a cache-line invalidation — not
//! measurable here, but the instruction-path difference is).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use optlock::{OptimisticRwLock, SeqCell};
use parking_lot::{Mutex, RwLock};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

const READS: u64 = 10_000;

fn read_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("lock_read_path");
    group.throughput(Throughput::Elements(READS));

    let opt = OptimisticRwLock::new();
    let data = AtomicU64::new(42);
    group.bench_function("optimistic lease (no store)", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for _ in 0..READS {
                loop {
                    let lease = opt.start_read();
                    let v = data.load(Relaxed);
                    if opt.end_read(lease) {
                        sum = sum.wrapping_add(v);
                        break;
                    }
                }
            }
            black_box(sum)
        })
    });

    let rw = RwLock::new(42u64);
    group.bench_function("parking_lot RwLock::read", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for _ in 0..READS {
                sum = sum.wrapping_add(*rw.read());
            }
            black_box(sum)
        })
    });

    let mutex = Mutex::new(42u64);
    group.bench_function("parking_lot Mutex::lock", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for _ in 0..READS {
                sum = sum.wrapping_add(*mutex.lock());
            }
            black_box(sum)
        })
    });
    group.finish();
}

fn write_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("lock_write_path");
    group.throughput(Throughput::Elements(READS));

    let cell: SeqCell<2> = SeqCell::new([0, 0]);
    group.bench_function("optimistic write (2 words)", |b| {
        b.iter(|| {
            for i in 0..READS {
                cell.write([i, i]);
            }
            black_box(cell.read())
        })
    });

    let rw = RwLock::new([0u64, 0]);
    group.bench_function("parking_lot RwLock::write (2 words)", |b| {
        b.iter(|| {
            for i in 0..READS {
                *rw.write() = [i, i];
            }
            black_box(*rw.read())
        })
    });
    group.finish();
}

fn upgrade_path(c: &mut Criterion) {
    // The read-potential-write pattern (§3.1): inspect, then upgrade.
    let mut group = c.benchmark_group("lock_read_then_upgrade");
    group.throughput(Throughput::Elements(READS));

    let cell: SeqCell<1> = SeqCell::new([0]);
    group.bench_function("optimistic upgrade", |b| {
        b.iter(|| {
            for _ in 0..READS {
                cell.update(|[v]| [v.wrapping_add(1)]);
            }
            black_box(cell.read())
        })
    });

    let mutex = Mutex::new(0u64);
    group.bench_function("mutex (pessimistic)", |b| {
        b.iter(|| {
            for _ in 0..READS {
                let mut g = mutex.lock();
                *g = g.wrapping_add(1);
            }
            black_box(*mutex.lock())
        })
    });
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = read_paths, write_paths, upgrade_path
}
criterion_main!(benches);
