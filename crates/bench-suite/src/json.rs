//! The shared hand-rolled JSON writer behind every `BENCH_*.json` /
//! `TELEMETRY_*.json` report (the workspace has no serde; see DESIGN.md's
//! dependency policy). Pretty-prints with two-space indentation and keeps
//! a container stack so commas and closing brackets cannot be mismatched.

use std::fmt::Write as _;

/// Escapes a string for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An incremental, indenting JSON document builder.
///
/// ```
/// use bench_suite::json::JsonWriter;
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.field_str("bench", "demo");
/// w.begin_array_field("results");
/// w.item_raw("{\"threads\": 1}");
/// w.end_array();
/// w.end_object();
/// assert!(w.finish().contains("\"bench\": \"demo\""));
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    /// One `bool` per open container: whether it already holds an element.
    stack: Vec<bool>,
}

impl JsonWriter {
    /// Creates an empty writer; start with [`begin_object`](Self::begin_object).
    pub fn new() -> Self {
        Self::default()
    }

    fn newline_indent(&mut self) {
        self.buf.push('\n');
        for _ in 0..self.stack.len() {
            self.buf.push_str("  ");
        }
    }

    /// Opens the next element slot in the current container (comma,
    /// newline, indentation). At the root this is a no-op.
    fn slot(&mut self) {
        if let Some(has) = self.stack.last_mut() {
            if *has {
                self.buf.push(',');
            }
            *has = true;
            self.newline_indent();
        }
    }

    fn keyed(&mut self, key: &str) {
        self.slot();
        let _ = write!(self.buf, "\"{}\": ", escape(key));
    }

    /// Opens an object as an array element (or as the document root).
    pub fn begin_object(&mut self) {
        self.slot();
        self.buf.push('{');
        self.stack.push(false);
    }

    /// Opens an object-valued field of the current object.
    pub fn begin_object_field(&mut self, key: &str) {
        self.keyed(key);
        self.buf.push('{');
        self.stack.push(false);
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) {
        let had = self.stack.pop().expect("end_object without begin_object");
        if had {
            self.newline_indent();
        }
        self.buf.push('}');
    }

    /// Opens an array-valued field of the current object.
    pub fn begin_array_field(&mut self, key: &str) {
        self.keyed(key);
        self.buf.push('[');
        self.stack.push(false);
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) {
        let had = self.stack.pop().expect("end_array without begin_array");
        if had {
            self.newline_indent();
        }
        self.buf.push(']');
    }

    /// A string-valued field (escaped).
    pub fn field_str(&mut self, key: &str, v: &str) {
        self.keyed(key);
        let _ = write!(self.buf, "\"{}\"", escape(v));
    }

    /// An integer-valued field.
    pub fn field_u64(&mut self, key: &str, v: u64) {
        self.keyed(key);
        let _ = write!(self.buf, "{v}");
    }

    /// A float-valued field with a fixed number of decimals.
    pub fn field_f64(&mut self, key: &str, v: f64, decimals: usize) {
        self.keyed(key);
        let _ = write!(self.buf, "{v:.decimals$}");
    }

    /// A boolean-valued field.
    pub fn field_bool(&mut self, key: &str, v: bool) {
        self.keyed(key);
        let _ = write!(self.buf, "{v}");
    }

    /// A field whose value is already-serialized JSON (e.g. the
    /// `to_json()` output of `EvalStats`, `HintStats`, `RuleProfile` or a
    /// telemetry `Snapshot`).
    pub fn field_raw(&mut self, key: &str, raw: &str) {
        self.keyed(key);
        self.buf.push_str(raw);
    }

    /// An array element holding already-serialized JSON.
    pub fn item_raw(&mut self, raw: &str) {
        self.slot();
        self.buf.push_str(raw);
    }

    /// Returns the finished document (with trailing newline), panicking if
    /// any container is still open.
    pub fn finish(mut self) -> String {
        assert!(self.stack.is_empty(), "unbalanced JSON writer");
        self.buf.push('\n');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny\t"), "x\\ny\\t");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn writer_builds_nested_document() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("bench", "unit \"test\"");
        w.field_u64("reps", 3);
        w.field_f64("seconds", 0.5, 4);
        w.field_bool("quick", true);
        w.begin_array_field("workloads");
        for i in 0..2u64 {
            w.begin_object();
            w.field_u64("i", i);
            w.begin_array_field("workers");
            w.item_raw(&format!("{{\"id\": {i}}}"));
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.begin_object_field("nested");
        w.field_raw("inner", "{\"k\": 1}");
        w.end_object();
        w.begin_array_field("empty");
        w.end_array();
        w.end_object();
        let doc = w.finish();
        assert!(doc.contains("\"bench\": \"unit \\\"test\\\"\""), "{doc}");
        assert!(doc.contains("\"seconds\": 0.5000"), "{doc}");
        assert!(doc.contains("\"empty\": []"), "{doc}");
        assert!(doc.contains("\"inner\": {\"k\": 1}"), "{doc}");
        assert!(doc.ends_with("}\n"), "{doc}");
        // Structural sanity: balanced brackets, one comma per sibling.
        let opens = doc.matches(['{', '[']).count();
        let closes = doc.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    #[should_panic(expected = "unbalanced")]
    fn unbalanced_writer_panics() {
        let mut w = JsonWriter::new();
        w.begin_object();
        let _ = w.finish();
    }
}
