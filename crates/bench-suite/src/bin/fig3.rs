//! Figure 3 — sequential performance of performance-critical set
//! operations (paper §4.1).
//!
//! Parts: (a) insertion ordered, (b) insertion random, (c) membership
//! ordered, (d) membership random, (e) full-range scan after ordered
//! insert, (f) full-range scan after random insert. Rows are data
//! structures, columns are element counts; cells are throughput in million
//! operations per second.
//!
//! `--scale S` sets the largest grid side to `S` (default 320, i.e. up to
//! ~102k elements; the paper sweeps 1000²–10000² — pass `--scale 1000` or
//! more to approach it). Sides sweep `S/8, S/4, S/2, S` mirroring the
//! paper's four sizes.

use bench_suite::obs::ObsSession;
use bench_suite::{emit_telemetry, fmt_mops, print_row, Args, Contestant};
use workloads::points::{points_2d, query_sequence};
use workloads::Stopwatch;

fn sides(scale: usize) -> Vec<u64> {
    let top = if scale == 0 { 320 } else { scale } as u64;
    [8u64, 4, 2, 1].iter().map(|d| (top / d).max(2)).collect()
}

fn main() {
    let args = Args::parse();
    let obs = ObsSession::start("fig3", &args);
    let sides = sides(args.scale);

    for (part, ordered, what) in [
        ("a", true, "sequential insertion (ordered) [M inserts/s]"),
        (
            "b",
            false,
            "sequential insertion (random order) [M inserts/s]",
        ),
    ] {
        if !args.wants_part(part) {
            continue;
        }
        header(&args, part, what, &sides);
        for c in Contestant::ALL {
            let mut cells = Vec::new();
            for &side in &sides {
                let pts = points_2d(side, ordered, args.seed);
                let mut set = c.create();
                let sw = Stopwatch::start();
                for t in &pts {
                    set.insert(*t);
                }
                cells.push(fmt_mops(sw.mops(pts.len())));
            }
            print_row(args.csv, c.label(), &cells);
        }
    }

    for (part, ordered, what) in [
        ("c", true, "membership test (ordered) [M queries/s]"),
        ("d", false, "membership test (random order) [M queries/s]"),
    ] {
        if !args.wants_part(part) {
            continue;
        }
        header(&args, part, what, &sides);
        for c in Contestant::ALL {
            let mut cells = Vec::new();
            for &side in &sides {
                let pts = points_2d(side, ordered, args.seed);
                let queries = query_sequence(side, ordered, args.seed);
                let mut set = c.create();
                for t in &pts {
                    set.insert(*t);
                }
                let sw = Stopwatch::start();
                let mut found = 0usize;
                for q in &queries {
                    found += usize::from(set.contains(q));
                }
                assert_eq!(found, queries.len(), "all probes are members");
                cells.push(fmt_mops(sw.mops(queries.len())));
            }
            print_row(args.csv, c.label(), &cells);
        }
    }

    for (part, ordered, what) in [
        (
            "e",
            true,
            "full-range scan (after ordered insert) [M entries/s]",
        ),
        (
            "f",
            false,
            "full-range scan (after random insert) [M entries/s]",
        ),
    ] {
        if !args.wants_part(part) {
            continue;
        }
        header(&args, part, what, &sides);
        // The paper's scan plots omit the no-hint variants (hints don't
        // apply to iteration).
        for c in [
            Contestant::GoogleBTree,
            Contestant::SeqBTree,
            Contestant::BTree,
            Contestant::StlRbtset,
            Contestant::StlHashset,
            Contestant::TbbHashset,
        ] {
            let mut cells = Vec::new();
            for &side in &sides {
                let pts = points_2d(side, ordered, args.seed);
                let mut set = c.create();
                for t in &pts {
                    set.insert(*t);
                }
                // Scan repeatedly so tiny sets measure more than timer noise.
                let repeats = (1_000_000 / pts.len()).clamp(1, 50);
                let sw = Stopwatch::start();
                let mut total = 0usize;
                for _ in 0..repeats {
                    total += set.scan_count();
                }
                assert_eq!(total, pts.len() * repeats);
                cells.push(fmt_mops(sw.mops(total)));
            }
            print_row(args.csv, c.label(), &cells);
        }
    }

    emit_telemetry("fig3");
    obs.finish();
}

fn header(args: &Args, part: &str, what: &str, sides: &[u64]) {
    println!("\n== Figure 3{part}: {what}");
    let cols: Vec<String> = sides.iter().map(|s| format!("{s}^2")).collect();
    print_row(args.csv, "elements", &cols);
}
