//! Sharded-storage study: per-shard trees vs one shared tree.
//!
//! Runs chain transitive closure (the paper's §4.3 shape: ~1M `path`
//! tuples at the default scale) over the single-tree specialized B-tree
//! backend and the sharded backend at several thread counts, reporting
//! wall time, chunks claimed/stolen, optimistic-lock contention counters
//! and the per-shard tuple balance. A storage-level merge microbenchmark
//! then isolates the zero-cross-shard-lock claim: a shard-parallel
//! `merge_from` must complete with **zero** read-validation failures and
//! **zero** upgrade failures, because every worker owns its shard's tree
//! outright. Writes `BENCH_shard.json` in the current directory.
//!
//! Flags: `--scale N` (graph size multiplier, default 1), `--threads
//! 1,8`, `--shards N` (default 8), `--seed N`, `--csv`, `--quick` (CI
//! smoke: tiny graph, one repetition). Contention counters need the
//! `telemetry` feature; without it they report zero and the JSON flags
//! `telemetry_enabled: false`.

use bench_suite::json::JsonWriter;
use bench_suite::obs::ObsSession;
use bench_suite::{emit_telemetry, print_row, Args};
use datalog::{parse, Engine, ParallelStrategy, StorageKind};
use std::time::Instant;
use workloads::graphs;

const TC_PROGRAM: &str = r#"
    .decl edge(x: number, y: number)
    .decl path(x: number, y: number)
    .output path
    path(x, y) :- edge(x, y).
    path(x, z) :- path(x, y), edge(y, z).
"#;

/// The lock/merge counters each timed run snapshots (telemetry names).
const COUNTERS: [&str; 6] = [
    "optlock.read_validations",
    "optlock.validation_failures",
    "optlock.upgrade_attempts",
    "optlock.upgrade_failures",
    "datalog.shard_merges",
    "datalog.shard_steals",
];

/// One measured configuration.
struct Sample {
    kind: StorageKind,
    threads: usize,
    seconds: f64,
    path_len: usize,
    chunks_claimed: u64,
    chunks_stolen: u64,
    /// Counter values accumulated during the best rep, `COUNTERS` order.
    counters: [u64; COUNTERS.len()],
    /// `path`'s per-shard tuple counts (empty for the single tree).
    shard_lens: Vec<usize>,
}

fn counters_now() -> [u64; COUNTERS.len()] {
    let snap = telemetry::snapshot();
    let mut out = [0u64; COUNTERS.len()];
    for (slot, name) in out.iter_mut().zip(COUNTERS) {
        *slot = snap.counter(name);
    }
    out
}

fn measure(edges: &[(u64, u64)], kind: StorageKind, threads: usize, reps: usize) -> Sample {
    let mut best: Option<Sample> = None;
    for _ in 0..reps.max(1) {
        let program = parse(TC_PROGRAM).unwrap();
        let mut engine = Engine::new(&program, kind, threads).unwrap();
        engine.set_parallel_strategy(ParallelStrategy::ChunkStealing);
        engine
            .add_facts("edge", edges.iter().map(|&(a, b)| vec![a, b]))
            .unwrap();
        telemetry::reset();
        let t0 = Instant::now();
        engine.run().unwrap();
        let seconds = t0.elapsed().as_secs_f64();
        let counters = counters_now();
        let stats = *engine.stats();
        let shard_lens = engine
            .storage_report()
            .relations
            .into_iter()
            .find(|r| r.name == "path")
            .map(|r| r.shard_lens)
            .unwrap_or_default();
        let sample = Sample {
            kind,
            threads,
            seconds,
            path_len: engine.relation_len("path").unwrap(),
            chunks_claimed: stats.chunks_claimed,
            chunks_stolen: stats.chunks_stolen,
            counters,
            shard_lens,
        };
        if best.as_ref().is_none_or(|b| sample.seconds < b.seconds) {
            best = Some(sample);
        }
    }
    best.unwrap()
}

/// `max / mean` of the per-shard tuple counts (1.0 = perfectly even).
fn balance(shard_lens: &[usize]) -> f64 {
    let max = shard_lens.iter().max().copied().unwrap_or(0) as f64;
    let mean: f64 = shard_lens.iter().sum::<usize>() as f64 / shard_lens.len().max(1) as f64;
    if mean > 0.0 {
        max / mean
    } else {
        1.0
    }
}

/// Storage-level merge microbenchmark: pre-load `dst` and `src` with
/// disjoint tuple sets, then time a `workers`-way `merge_from` and
/// report the contention counters it accrued.
fn merge_micro(
    kind: StorageKind,
    tuples: u64,
    workers: usize,
) -> (u64, f64, [u64; COUNTERS.len()]) {
    let dst = kind.create();
    let src = kind.create();
    let mut dctx = dst.make_ctx();
    let mut sctx = src.make_ctx();
    for i in 0..tuples {
        // Leading column varies so the shard map spreads both sides.
        dst.insert(&[i, 2 * i, 0, 0, 0], &mut dctx);
        src.insert(&[i, 2 * i + 1, 0, 0, 0], &mut sctx);
    }
    telemetry::reset();
    let t0 = Instant::now();
    let merged = dst.merge_from(src.as_ref(), workers);
    let seconds = t0.elapsed().as_secs_f64();
    (merged, seconds, counters_now())
}

fn main() {
    let args = Args::parse();
    let obs = ObsSession::start("shard", &args);
    let scale = if args.scale == 0 { 1 } else { args.scale };
    let nshards = args.shards.unwrap_or(8).max(1);
    let threads = if args.threads.is_empty() {
        vec![1, 8]
    } else {
        args.threads.clone()
    };
    let reps = if args.quick { 1 } else { 3 };

    // chain(1415) closes to C(1415, 2) = 1,000,405 path tuples — the ~1M
    // tuple working set the acceptance run calls for.
    let edges = if args.quick {
        graphs::chain(65)
    } else {
        graphs::chain(1415 * scale as u64)
    };
    let kinds = [StorageKind::SpecBTree, StorageKind::ShardedBTree(nshards)];

    println!("== chain_tc: {} edges, {nshards} shards ==", edges.len());
    print_row(
        args.csv,
        "backend/threads",
        &[
            "ms".into(),
            "chunks".into(),
            "stolen".into(),
            "vfail".into(),
            "ufail".into(),
            "balance".into(),
        ],
    );

    let mut samples: Vec<Sample> = Vec::new();
    for &kind in &kinds {
        for &t in &threads {
            let s = measure(&edges, kind, t, reps);
            print_row(
                args.csv,
                &format!("{}/{t}", kind.label()),
                &[
                    format!("{:.2}", s.seconds * 1e3),
                    s.chunks_claimed.to_string(),
                    s.chunks_stolen.to_string(),
                    s.counters[1].to_string(),
                    s.counters[3].to_string(),
                    if s.shard_lens.is_empty() {
                        "-".into()
                    } else {
                        format!("{:.2}", balance(&s.shard_lens))
                    },
                ],
            );
            samples.push(s);
        }
    }

    // Both backends must agree on the closure size.
    let expect = samples[0].path_len;
    assert!(
        samples.iter().all(|s| s.path_len == expect),
        "backends disagree on closure size"
    );

    let top = *threads.iter().max().unwrap();
    let bottom = *threads.iter().min().unwrap();
    let find = |kind: StorageKind, t: usize| {
        samples
            .iter()
            .find(|s| s.kind == kind && s.threads == t)
            .unwrap()
    };
    let single_top = find(StorageKind::SpecBTree, top);
    let sharded_top = find(StorageKind::ShardedBTree(nshards), top);
    let speedup = single_top.seconds / sharded_top.seconds;
    let parity = find(StorageKind::SpecBTree, bottom).seconds
        / find(StorageKind::ShardedBTree(nshards), bottom).seconds;
    println!(
        "-- sharded speedup at {top} threads: {speedup:.2}x, parity at {bottom} \
         thread(s): {parity:.2}x, balance {:.2}, shard_lens {:?}",
        balance(&sharded_top.shard_lens),
        sharded_top.shard_lens
    );

    // Zero-cross-shard-lock microbenchmark: a shard-parallel merge into
    // disjoint per-shard trees must never fail a read validation or a
    // lock upgrade; the single shared tree under the same parallel merge
    // is the contended comparison point.
    let micro_tuples = if args.quick { 20_000 } else { 400_000 };
    let (m_single, s_single, c_single) = merge_micro(StorageKind::SpecBTree, micro_tuples, top);
    let (m_sharded, s_sharded, c_sharded) =
        merge_micro(StorageKind::ShardedBTree(nshards), micro_tuples, top);
    assert_eq!(m_single, micro_tuples, "single-tree merge lost tuples");
    assert_eq!(m_sharded, micro_tuples, "sharded merge lost tuples");
    let zero_locks = c_sharded[1] == 0 && c_sharded[3] == 0;
    println!(
        "-- merge micro ({micro_tuples} tuples, {top} workers): single {:.2}ms \
         (vfail {}, ufail {}), sharded {:.2}ms (vfail {}, ufail {}) => \
         zero_cross_shard_locks={zero_locks}",
        s_single * 1e3,
        c_single[1],
        c_single[3],
        s_sharded * 1e3,
        c_sharded[1],
        c_sharded[3],
    );

    let telemetry_on = telemetry::snapshot().enabled;
    let mut json = JsonWriter::new();
    json.begin_object();
    json.field_str("bench", "shard");
    json.field_bool("quick", args.quick);
    json.field_u64("reps", reps as u64);
    json.field_u64("shards", nshards as u64);
    json.field_u64("top_threads", top as u64);
    json.field_bool("telemetry_enabled", telemetry_on);
    json.begin_array_field("workloads");
    json.begin_object();
    json.field_str("name", "chain_tc");
    json.field_u64("edges", edges.len() as u64);
    json.field_u64("closure", expect as u64);
    json.field_f64("speedup_at_top_threads", speedup, 4);
    json.field_f64("parity_at_bottom_threads", parity, 4);
    json.field_f64("balance", balance(&sharded_top.shard_lens), 4);
    let lens: Vec<String> = sharded_top
        .shard_lens
        .iter()
        .map(usize::to_string)
        .collect();
    json.field_raw("shard_lens", &format!("[{}]", lens.join(", ")));
    json.begin_array_field("results");
    for s in &samples {
        json.begin_object();
        json.field_str("backend", s.kind.label());
        json.field_u64("threads", s.threads as u64);
        json.field_f64("seconds", s.seconds, 6);
        json.field_u64("chunks_claimed", s.chunks_claimed);
        json.field_u64("chunks_stolen", s.chunks_stolen);
        json.begin_object_field("counters");
        for (name, v) in COUNTERS.iter().zip(s.counters) {
            json.field_u64(name, v);
        }
        json.end_object();
        json.end_object();
    }
    json.end_array();
    json.end_object();
    json.end_array();
    json.begin_object_field("merge_micro");
    json.field_u64("tuples", micro_tuples);
    json.field_u64("workers", top as u64);
    json.field_bool("zero_cross_shard_locks", zero_locks);
    for (label, secs, counters) in [
        ("single", s_single, c_single),
        ("sharded", s_sharded, c_sharded),
    ] {
        json.begin_object_field(label);
        json.field_f64("seconds", secs, 6);
        json.begin_object_field("counters");
        for (name, v) in COUNTERS.iter().zip(counters) {
            json.field_u64(name, v);
        }
        json.end_object();
        json.end_object();
    }
    json.end_object();
    json.end_object();
    let out = "BENCH_shard.json";
    std::fs::write(out, json.finish()).expect("write BENCH_shard.json");
    println!("wrote {out}");
    emit_telemetry("shard");
    obs.finish();
}
