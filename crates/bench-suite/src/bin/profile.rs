//! Telemetry profiler: runs a Datalog workload plus a deliberately
//! contended raw B-tree phase and reports the top restart/contention
//! sources — the single command behind "why did this regress?".
//!
//! Requires the `telemetry` feature:
//!
//! ```text
//! cargo run --release --features telemetry --bin profile -- --quick
//! ```
//!
//! Phases:
//!
//! 1. **chain_tc** — transitive closure of a chain graph on the engine
//!    (chunk-stealing, highest requested thread count): exercises the
//!    scheduler histograms (`datalog.chunk_nanos`, `datalog.delta_tuples`,
//!    `datalog.stratum_nanos`).
//! 2. **contended inserts** — all threads hammer interleaved keys in one
//!    narrow range of a shared `BTreeSet` while readers probe the same
//!    range: forces optimistic-read validation failures, upgrade failures
//!    and Algorithm 1 restarts. The restart budget is floored here (0,
//!    unless `TELEMETRY_RESTART_BUDGET` overrides it), so restarting
//!    operations dump their flight-recorder ring to stderr.
//!
//! Output: the merged snapshot as a table, the top sources ranked, and
//! `TELEMETRY_profile.json`. Flags: `--quick`, `--threads 8`, `--scale N`,
//! `--seed N`.

use bench_suite::obs::ObsSession;
use bench_suite::{emit_telemetry, Args};
use datalog::{parse, Engine, ParallelStrategy, StorageKind};
use specbtree::BTreeSet;
use workloads::graphs;

const TC_PROGRAM: &str = r#"
    .decl edge(x: number, y: number)
    .decl path(x: number, y: number)
    .output path
    path(x, y) :- edge(x, y).
    path(x, z) :- path(x, y), edge(y, z).
"#;

fn run_chain_tc(nodes: u64, threads: usize) -> Engine {
    let edges = graphs::chain(nodes);
    let program = parse(TC_PROGRAM).unwrap();
    let mut engine = Engine::new(&program, StorageKind::SpecBTree, threads).unwrap();
    engine.set_parallel_strategy(ParallelStrategy::ChunkStealing);
    engine
        .add_facts("edge", edges.iter().map(|&(a, b)| vec![a, b]))
        .unwrap();
    engine.run().unwrap();
    println!(
        "== chain_tc: {nodes} nodes, {threads} threads, closure {} ==",
        engine.relation_len("path").unwrap()
    );
    for entry in engine.profile() {
        println!("  {}", entry.to_json());
    }
    println!("  stats: {}", engine.stats().to_json());
    engine
}

/// All threads insert interleaved keys into the same narrow range (every
/// leaf is shared), with reader threads probing the same range — the
/// contention regime where validation failures and restarts show up.
fn run_contended_inserts(per_thread: u64, writers: usize) {
    let tree: BTreeSet<2> = BTreeSet::new();
    let readers = (writers / 2).max(1);
    std::thread::scope(|s| {
        for w in 0..writers as u64 {
            let tree = &tree;
            s.spawn(move || {
                for i in 0..per_thread {
                    // Interleave threads within the same leaves: key order
                    // is i-major, thread-minor.
                    tree.insert([i, w]);
                }
            });
        }
        for r in 0..readers as u64 {
            let tree = &tree;
            s.spawn(move || {
                for i in 0..per_thread {
                    std::hint::black_box(tree.contains(&[i, r]));
                }
            });
        }
    });
    println!(
        "== contended inserts: {writers} writers + {readers} readers, \
         {per_thread} keys each, final size {} ==",
        tree.len()
    );
}

fn main() {
    let args = Args::parse();
    let obs = ObsSession::start("profile", &args);
    if !telemetry::ENABLED {
        println!(
            "telemetry is disabled in this build; rebuild with\n\
             \n    cargo run --release --features telemetry --bin profile\n\
             \nto collect counters, histograms and flight-recorder dumps."
        );
        std::fs::write("TELEMETRY_profile.json", telemetry::snapshot().to_json())
            .expect("write TELEMETRY_profile.json");
        println!("wrote TELEMETRY_profile.json (enabled: false)");
        obs.finish(); // no-op: never writes trace/sample files when off
        return;
    }

    let threads = args.threads.last().copied().unwrap_or(8).max(2);
    let scale = if args.scale == 0 { 1 } else { args.scale } as u64;
    telemetry::reset();

    // Phase 1: engine workload, then a retraction so the storage report
    // has scars to show (buried leaves, gapped-leaf sentinels).
    let nodes = if args.quick { 64 } else { 256 * scale };
    let mut engine = run_chain_tc(nodes, threads);
    engine
        .retract_fact("edge", &[nodes / 4, nodes / 4 + 1])
        .expect("retract mid-chain edge");
    let report = engine.storage_report();
    println!("-- storage report (after retraction) --");
    print!("{}", report.to_table());
    obs.annotate("chain_tc.storage_report", &report.to_json());
    drop(engine);

    // Phase 2: contended raw inserts, with the restart budget floored so
    // budget overruns demonstrably dump the flight recorder (budget 0 =
    // any restart is over budget; the env var wins if the user set one).
    if std::env::var("TELEMETRY_RESTART_BUDGET").is_err() {
        telemetry::set_restart_budget(0);
    }
    let per_thread = if args.quick { 20_000 } else { 100_000 * scale };
    run_contended_inserts(per_thread, threads);

    // Report.
    let snap = telemetry::snapshot();
    println!("-- merged telemetry --");
    print!("{}", snap.to_table());
    println!("-- top restart/contention sources --");
    for (name, v) in snap.top(8) {
        println!("  {name:<40} {v:>12}");
    }
    emit_telemetry("profile");
    obs.finish();
}
