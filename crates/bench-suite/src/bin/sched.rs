//! Scheduler study: chunk-driven work stealing vs materialize-then-split.
//!
//! Runs transitive closure over ≥2 workload graphs with both parallel
//! scheduling strategies at several thread counts, reporting wall time,
//! chunks claimed, per-worker load, scheduler imbalance (max/mean tuples
//! scanned) and operation-hint hit rates. Also writes a machine-readable
//! snapshot to `BENCH_sched.json` in the current directory.
//!
//! Flags: `--scale N` (graph size multiplier, default 1), `--threads
//! 1,2,4,8`, `--seed N`, `--csv`, `--quick` (CI smoke: tiny graphs, one
//! repetition).

use bench_suite::json::JsonWriter;
use bench_suite::obs::ObsSession;
use bench_suite::{emit_telemetry, print_row, Args};
use datalog::{parse, Engine, ParallelStrategy, StorageKind};
use std::time::Instant;
use workloads::graphs;

const TC_PROGRAM: &str = r#"
    .decl edge(x: number, y: number)
    .decl path(x: number, y: number)
    .output path
    path(x, y) :- edge(x, y).
    path(x, z) :- path(x, y), edge(y, z).
"#;

/// One measured configuration.
struct Sample {
    strategy: ParallelStrategy,
    threads: usize,
    seconds: f64,
    path_len: usize,
    chunks_claimed: u64,
    tuples_scanned: u64,
    tuples_emitted: u64,
    imbalance: f64,
    hint_hit_rate: f64,
    /// `(chunks_claimed, tuples_scanned)` per worker, from the timed run.
    per_worker: Vec<(u64, u64)>,
}

fn strategy_name(s: ParallelStrategy) -> &'static str {
    match s {
        ParallelStrategy::ChunkStealing => "chunk_stealing",
        ParallelStrategy::MaterializeSplit => "materialize_split",
    }
}

fn run_once(edges: &[(u64, u64)], strategy: ParallelStrategy, threads: usize) -> (f64, Engine) {
    let program = parse(TC_PROGRAM).unwrap();
    let mut engine = Engine::new(&program, StorageKind::SpecBTree, threads).unwrap();
    engine.set_parallel_strategy(strategy);
    engine
        .add_facts("edge", edges.iter().map(|&(a, b)| vec![a, b]))
        .unwrap();
    let t0 = Instant::now();
    engine.run().unwrap();
    (t0.elapsed().as_secs_f64(), engine)
}

fn measure(
    edges: &[(u64, u64)],
    strategy: ParallelStrategy,
    threads: usize,
    reps: usize,
) -> Sample {
    let mut best: Option<(f64, Engine)> = None;
    for _ in 0..reps.max(1) {
        let (secs, engine) = run_once(edges, strategy, threads);
        if best.as_ref().is_none_or(|(b, _)| secs < *b) {
            best = Some((secs, engine));
        }
    }
    let (seconds, engine) = best.unwrap();
    let stats = *engine.stats();
    Sample {
        strategy,
        threads,
        seconds,
        path_len: engine.relation_len("path").unwrap(),
        chunks_claimed: stats.chunks_claimed,
        tuples_scanned: stats.tuples_scanned,
        tuples_emitted: stats.tuples_emitted,
        imbalance: stats.sched_imbalance,
        hint_hit_rate: stats.hints.hit_rate(),
        per_worker: engine
            .worker_stats()
            .iter()
            .map(|w| (w.chunks_claimed, w.tuples_scanned))
            .collect(),
    }
}

fn main() {
    let args = Args::parse();
    let obs = ObsSession::start("sched", &args);
    let scale = if args.scale == 0 { 1 } else { args.scale };
    let threads = if args.threads.is_empty() {
        vec![1, 2, 4, 8]
    } else {
        args.threads.clone()
    };
    let reps = if args.quick { 1 } else { 3 };

    // Three regimes: a long chain (hundreds of iterations, tiny deltas —
    // the scheduler's fixed costs dominate), an acyclic grid (many
    // iterations, medium deltas) and a cyclic random graph (few
    // iterations, fat deltas — join work dominates).
    let workloads: Vec<(&str, Vec<(u64, u64)>)> = if args.quick {
        vec![
            ("chain_tc", graphs::chain(64)),
            ("grid_tc", graphs::grid(8)),
            ("random_tc", graphs::random_graph(60, 2, args.seed)),
        ]
    } else {
        vec![
            ("chain_tc", graphs::chain(320 * scale as u64)),
            ("grid_tc", graphs::grid(14 * scale as u64)),
            (
                "random_tc",
                graphs::random_graph(220 * scale as u64, 2, args.seed),
            ),
        ]
    };

    let mut json = JsonWriter::new();
    json.begin_object();
    json.field_str("bench", "sched");
    json.field_bool("quick", args.quick);
    json.field_u64("reps", reps as u64);
    json.field_u64("chunks_per_worker", datalog::CHUNKS_PER_WORKER as u64);
    json.begin_array_field("workloads");

    for (name, edges) in &workloads {
        println!("== {name}: {} edges ==", edges.len());
        print_row(
            args.csv,
            "strategy/threads",
            &[
                "ms".into(),
                "chunks".into(),
                "scanned".into(),
                "imbal".into(),
                "hints%".into(),
            ],
        );

        let mut samples: Vec<Sample> = Vec::new();
        for &strategy in &[
            ParallelStrategy::MaterializeSplit,
            ParallelStrategy::ChunkStealing,
        ] {
            for &t in &threads {
                let s = measure(edges, strategy, t, reps);
                print_row(
                    args.csv,
                    &format!("{}/{t}", strategy_name(strategy)),
                    &[
                        format!("{:.2}", s.seconds * 1e3),
                        s.chunks_claimed.to_string(),
                        s.tuples_scanned.to_string(),
                        format!("{:.2}", s.imbalance),
                        format!("{:.1}", s.hint_hit_rate * 100.0),
                    ],
                );
                samples.push(s);
            }
        }

        // All configurations must agree on the closure size.
        let expect = samples[0].path_len;
        assert!(
            samples.iter().all(|s| s.path_len == expect),
            "{name}: schedulers disagree on closure size"
        );

        // Speedup of chunk stealing over materialize-then-split at the
        // highest measured thread count.
        let top = *threads.iter().max().unwrap();
        let mat = samples
            .iter()
            .find(|s| s.strategy == ParallelStrategy::MaterializeSplit && s.threads == top)
            .unwrap();
        let chk = samples
            .iter()
            .find(|s| s.strategy == ParallelStrategy::ChunkStealing && s.threads == top)
            .unwrap();
        let speedup = mat.seconds / chk.seconds;
        println!(
            "-- {name}: chunk-stealing speedup at {top} threads: {speedup:.2}x \
             (imbalance {:.2}, per-worker chunks {:?})\n",
            chk.imbalance,
            chk.per_worker.iter().map(|w| w.0).collect::<Vec<_>>()
        );

        json.begin_object();
        json.field_str("name", name);
        json.field_u64("edges", edges.len() as u64);
        json.field_u64("closure", expect as u64);
        json.field_f64(
            &format!("speedup_chunk_vs_materialize_at_{top}_threads"),
            speedup,
            4,
        );
        json.begin_array_field("results");
        for s in &samples {
            json.begin_object();
            json.field_str("strategy", strategy_name(s.strategy));
            json.field_u64("threads", s.threads as u64);
            json.field_f64("seconds", s.seconds, 6);
            json.field_u64("chunks_claimed", s.chunks_claimed);
            json.field_u64("tuples_scanned", s.tuples_scanned);
            json.field_u64("tuples_emitted", s.tuples_emitted);
            json.field_f64("imbalance", s.imbalance, 4);
            json.field_f64("hint_hit_rate", s.hint_hit_rate, 4);
            json.begin_array_field("workers");
            for &(c, n) in &s.per_worker {
                json.item_raw(&format!("{{\"chunks\": {c}, \"scanned\": {n}}}"));
            }
            json.end_array();
            json.end_object();
        }
        json.end_array();
        json.end_object();
    }

    json.end_array();
    json.end_object();
    let out = "BENCH_sched.json";
    std::fs::write(out, json.finish()).expect("write BENCH_sched.json");
    println!("wrote {out}");
    emit_telemetry("sched");
    obs.finish();
}
