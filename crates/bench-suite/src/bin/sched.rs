//! Scheduler study: chunk-driven work stealing vs materialize-then-split.
//!
//! Runs transitive closure over ≥2 workload graphs with both parallel
//! scheduling strategies at several thread counts, reporting wall time,
//! chunks claimed, per-worker load, scheduler imbalance (max/mean tuples
//! scanned) and operation-hint hit rates. Also writes a machine-readable
//! snapshot to `BENCH_sched.json` in the current directory.
//!
//! Flags: `--scale N` (graph size multiplier, default 1), `--threads
//! 1,2,4,8`, `--seed N`, `--csv`, `--quick` (CI smoke: tiny graphs, one
//! repetition).

use bench_suite::{print_row, Args};
use datalog::{parse, Engine, ParallelStrategy, StorageKind};
use std::fmt::Write as _;
use std::time::Instant;
use workloads::graphs;

const TC_PROGRAM: &str = r#"
    .decl edge(x: number, y: number)
    .decl path(x: number, y: number)
    .output path
    path(x, y) :- edge(x, y).
    path(x, z) :- path(x, y), edge(y, z).
"#;

/// One measured configuration.
struct Sample {
    strategy: ParallelStrategy,
    threads: usize,
    seconds: f64,
    path_len: usize,
    chunks_claimed: u64,
    tuples_scanned: u64,
    tuples_emitted: u64,
    imbalance: f64,
    hint_hit_rate: f64,
    /// `(chunks_claimed, tuples_scanned)` per worker, from the timed run.
    per_worker: Vec<(u64, u64)>,
}

fn strategy_name(s: ParallelStrategy) -> &'static str {
    match s {
        ParallelStrategy::ChunkStealing => "chunk_stealing",
        ParallelStrategy::MaterializeSplit => "materialize_split",
    }
}

fn run_once(edges: &[(u64, u64)], strategy: ParallelStrategy, threads: usize) -> (f64, Engine) {
    let program = parse(TC_PROGRAM).unwrap();
    let mut engine = Engine::new(&program, StorageKind::SpecBTree, threads).unwrap();
    engine.set_parallel_strategy(strategy);
    engine
        .add_facts("edge", edges.iter().map(|&(a, b)| vec![a, b]))
        .unwrap();
    let t0 = Instant::now();
    engine.run().unwrap();
    (t0.elapsed().as_secs_f64(), engine)
}

fn measure(
    edges: &[(u64, u64)],
    strategy: ParallelStrategy,
    threads: usize,
    reps: usize,
) -> Sample {
    let mut best: Option<(f64, Engine)> = None;
    for _ in 0..reps.max(1) {
        let (secs, engine) = run_once(edges, strategy, threads);
        if best.as_ref().is_none_or(|(b, _)| secs < *b) {
            best = Some((secs, engine));
        }
    }
    let (seconds, engine) = best.unwrap();
    let stats = *engine.stats();
    Sample {
        strategy,
        threads,
        seconds,
        path_len: engine.relation_len("path").unwrap(),
        chunks_claimed: stats.chunks_claimed,
        tuples_scanned: stats.tuples_scanned,
        tuples_emitted: stats.tuples_emitted,
        imbalance: stats.sched_imbalance,
        hint_hit_rate: stats.hints.hit_rate(),
        per_worker: engine
            .worker_stats()
            .iter()
            .map(|w| (w.chunks_claimed, w.tuples_scanned))
            .collect(),
    }
}

fn json_escape_free(name: &str) -> &str {
    // Workload names are ASCII identifiers; assert rather than escape.
    assert!(name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
    name
}

fn main() {
    let args = Args::parse();
    let scale = if args.scale == 0 { 1 } else { args.scale };
    let threads = if args.threads.is_empty() {
        vec![1, 2, 4, 8]
    } else {
        args.threads.clone()
    };
    let reps = if args.quick { 1 } else { 3 };

    // Three regimes: a long chain (hundreds of iterations, tiny deltas —
    // the scheduler's fixed costs dominate), an acyclic grid (many
    // iterations, medium deltas) and a cyclic random graph (few
    // iterations, fat deltas — join work dominates).
    let workloads: Vec<(&str, Vec<(u64, u64)>)> = if args.quick {
        vec![
            ("chain_tc", graphs::chain(64)),
            ("grid_tc", graphs::grid(8)),
            ("random_tc", graphs::random_graph(60, 2, args.seed)),
        ]
    } else {
        vec![
            ("chain_tc", graphs::chain(320 * scale as u64)),
            ("grid_tc", graphs::grid(14 * scale as u64)),
            (
                "random_tc",
                graphs::random_graph(220 * scale as u64, 2, args.seed),
            ),
        ]
    };

    let mut json = String::from("{\n  \"bench\": \"sched\",\n");
    let _ = writeln!(json, "  \"quick\": {},", args.quick);
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(
        json,
        "  \"chunks_per_worker\": {},",
        datalog::CHUNKS_PER_WORKER
    );
    json.push_str("  \"workloads\": [\n");

    for (wi, (name, edges)) in workloads.iter().enumerate() {
        println!("== {name}: {} edges ==", edges.len());
        print_row(
            args.csv,
            "strategy/threads",
            &[
                "ms".into(),
                "chunks".into(),
                "scanned".into(),
                "imbal".into(),
                "hints%".into(),
            ],
        );

        let mut samples: Vec<Sample> = Vec::new();
        for &strategy in &[
            ParallelStrategy::MaterializeSplit,
            ParallelStrategy::ChunkStealing,
        ] {
            for &t in &threads {
                let s = measure(edges, strategy, t, reps);
                print_row(
                    args.csv,
                    &format!("{}/{t}", strategy_name(strategy)),
                    &[
                        format!("{:.2}", s.seconds * 1e3),
                        s.chunks_claimed.to_string(),
                        s.tuples_scanned.to_string(),
                        format!("{:.2}", s.imbalance),
                        format!("{:.1}", s.hint_hit_rate * 100.0),
                    ],
                );
                samples.push(s);
            }
        }

        // All configurations must agree on the closure size.
        let expect = samples[0].path_len;
        assert!(
            samples.iter().all(|s| s.path_len == expect),
            "{name}: schedulers disagree on closure size"
        );

        // Speedup of chunk stealing over materialize-then-split at the
        // highest measured thread count.
        let top = *threads.iter().max().unwrap();
        let mat = samples
            .iter()
            .find(|s| s.strategy == ParallelStrategy::MaterializeSplit && s.threads == top)
            .unwrap();
        let chk = samples
            .iter()
            .find(|s| s.strategy == ParallelStrategy::ChunkStealing && s.threads == top)
            .unwrap();
        let speedup = mat.seconds / chk.seconds;
        println!(
            "-- {name}: chunk-stealing speedup at {top} threads: {speedup:.2}x \
             (imbalance {:.2}, per-worker chunks {:?})\n",
            chk.imbalance,
            chk.per_worker.iter().map(|w| w.0).collect::<Vec<_>>()
        );

        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", json_escape_free(name));
        let _ = writeln!(json, "      \"edges\": {},", edges.len());
        let _ = writeln!(json, "      \"closure\": {expect},");
        let _ = writeln!(
            json,
            "      \"speedup_chunk_vs_materialize_at_{top}_threads\": {speedup:.4},"
        );
        json.push_str("      \"results\": [\n");
        for (i, s) in samples.iter().enumerate() {
            let workers: Vec<String> = s
                .per_worker
                .iter()
                .map(|&(c, n)| format!("{{\"chunks\": {c}, \"scanned\": {n}}}"))
                .collect();
            let _ = write!(
                json,
                "        {{\"strategy\": \"{}\", \"threads\": {}, \"seconds\": {:.6}, \
                 \"chunks_claimed\": {}, \"tuples_scanned\": {}, \"tuples_emitted\": {}, \
                 \"imbalance\": {:.4}, \"hint_hit_rate\": {:.4}, \"workers\": [{}]}}",
                strategy_name(s.strategy),
                s.threads,
                s.seconds,
                s.chunks_claimed,
                s.tuples_scanned,
                s.tuples_emitted,
                s.imbalance,
                s.hint_hit_rate,
                workers.join(", ")
            );
            json.push_str(if i + 1 < samples.len() { ",\n" } else { "\n" });
        }
        json.push_str("      ]\n");
        json.push_str(if wi + 1 < workloads.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }

    json.push_str("  ]\n}\n");
    let out = "BENCH_sched.json";
    std::fs::write(out, &json).expect("write BENCH_sched.json");
    println!("wrote {out}");
}
