//! Table 2 — real-world Datalog benchmark properties and evaluation
//! statistics (paper §4.3), plus the hint hit rates the text reports
//! (54% Doop / 77% security analysis).
//!
//! `--scale N` scales the generated fact bases (default 6). `--threads T`
//! (single value; default 1) selects the worker count whose hint rates are
//! reported — the paper quotes both the 1-thread and 16-thread rates.

use bench_suite::obs::ObsSession;
use bench_suite::{emit_telemetry, print_row, Args};
use datalog::{Engine, EvalStats, StorageKind};
use workloads::network::{self, NetworkConfig};
use workloads::pointsto::{self, PointsToConfig};

struct BenchRun {
    relations: usize,
    rules: usize,
    stats: EvalStats,
    /// Largest relation as a fraction of all stored tuples (the paper
    /// notes 1.2e7 of the EC2 benchmark's 1.6e7 tuples sit in one
    /// relation).
    dominant_share: f64,
}

fn run_pointsto(scale: usize, seed: u64, threads: usize) -> BenchRun {
    let program = pointsto::program();
    let facts = pointsto::generate_facts(&PointsToConfig::scaled(scale), seed);
    let mut engine = Engine::new(&program, StorageKind::SpecBTree, threads).unwrap();
    pointsto::load_facts(&mut engine, &facts).unwrap();
    engine.run().unwrap();
    BenchRun {
        relations: engine.relation_count(),
        rules: engine.rule_count(),
        stats: *engine.stats(),
        dominant_share: dominant_share(&engine),
    }
}

fn dominant_share(engine: &Engine) -> f64 {
    let sizes = engine.relation_sizes();
    let total: usize = sizes.iter().map(|(_, n)| n).sum();
    if total == 0 {
        return 0.0;
    }
    sizes[0].1 as f64 / total as f64
}

fn run_network(scale: usize, seed: u64, threads: usize) -> BenchRun {
    let program = network::program();
    let facts = network::generate_facts(&NetworkConfig::scaled(scale), seed);
    let mut engine = Engine::new(&program, StorageKind::SpecBTree, threads).unwrap();
    network::load_facts(&mut engine, &facts).unwrap();
    engine.run().unwrap();
    BenchRun {
        relations: engine.relation_count(),
        rules: engine.rule_count(),
        stats: *engine.stats(),
        dominant_share: dominant_share(&engine),
    }
}

fn sci(v: u64) -> String {
    if v == 0 {
        return "0".into();
    }
    let exp = (v as f64).log10().floor() as i32;
    let mant = v as f64 / 10f64.powi(exp);
    format!("{mant:.1}e{exp}")
}

fn main() {
    let args = Args::parse();
    let obs = ObsSession::start("table2", &args);
    let scale = if args.scale == 0 { 6 } else { args.scale };
    let threads = args.threads.first().copied().unwrap_or(1);

    let doop = run_pointsto(scale, args.seed, threads);
    let ec2 = run_network(scale, args.seed, threads);

    println!("\n== Table 2: Real-World Datalog Benchmark Properties (synthetic substitutes, scale {scale}, {threads} thread(s))");
    println!();
    print_row(
        args.csv,
        "Datalog Property",
        &["points-to".into(), "EC2 security".into()],
    );
    print_row(
        args.csv,
        "relations",
        &[doop.relations.to_string(), ec2.relations.to_string()],
    );
    print_row(
        args.csv,
        "rules",
        &[doop.rules.to_string(), ec2.rules.to_string()],
    );
    println!();
    print_row(
        args.csv,
        "Evaluation Statistics",
        &["points-to".into(), "EC2 security".into()],
    );
    type StatGetter = fn(&EvalStats) -> u64;
    let rows: [(&str, StatGetter); 6] = [
        ("inserts", |s| s.inserts),
        ("membership tests", |s| s.membership_tests),
        ("lower_bound calls", |s| s.lower_bound_calls),
        ("upper_bound calls", |s| s.upper_bound_calls),
        ("input tuples", |s| s.input_tuples),
        ("produced tuples", |s| s.produced_tuples),
    ];
    for (label, get) in rows {
        print_row(
            args.csv,
            label,
            &[sci(get(&doop.stats)), sci(get(&ec2.stats))],
        );
    }
    print_row(
        args.csv,
        "largest relation share",
        &[
            format!("{:.0}%", doop.dominant_share * 100.0),
            format!("{:.0}%", ec2.dominant_share * 100.0),
        ],
    );
    println!();
    print_row(
        args.csv,
        "Hint statistics (§4.3)",
        &["points-to".into(), "EC2 security".into()],
    );
    print_row(
        args.csv,
        "hint hits",
        &[sci(doop.stats.hints.hits()), sci(ec2.stats.hints.hits())],
    );
    print_row(
        args.csv,
        "hint hit rate",
        &[
            format!("{:.0}%", doop.stats.hints.hit_rate() * 100.0),
            format!("{:.0}%", ec2.stats.hints.hit_rate() * 100.0),
        ],
    );
    println!();
    println!(
        "paper reference (absolute numbers NOT expected to match; the read/write profile is):"
    );
    println!("  Doop/DaCapo: 8.3e7 inserts, 1.5e8 membership, 2.1e8 lower/upper, 8.3e6 in, 2.5e7 out, 54% hints");
    println!("  EC2:         2.1e7 inserts, 4.2e9 membership, 2.5e9 lower/upper, 3.5e3 in, 1.6e7 out, 77% hints");

    emit_telemetry("table2");
    obs.finish();
}
