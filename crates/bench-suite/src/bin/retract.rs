//! Retraction study: delete–rederive incremental maintenance vs
//! from-scratch recomputation.
//!
//! The headline scenario builds the transitive closure of a long chain
//! (≈1M tuples at full scale), withdraws the trailing 1% of EDB edges in
//! one batch, and times `Engine::retract_facts` against re-evaluating the
//! program from scratch over the surviving edges. DRed's promise is work
//! proportional to the *affected* derivations, so the scenario is chosen
//! to have a bounded affected set: a trailing cut invalidates the ~15% of
//! paths crossing it. (An evenly-spread 1% cut on a chain is the
//! anti-scenario — chains have zero path redundancy, so spread cuts
//! destroy ~90% of the closure and no incremental scheme can beat
//! recomputing the small remainder; the grid scenario below covers
//! rederivation-heavy retraction instead, where most overdeleted tuples
//! come back through alternative derivations.)
//!
//! Writes `BENCH_retract.json` in the current directory. Flags: `--scale
//! N`, `--threads 1,2,4,8`, `--seed N`, `--csv`, `--quick` (CI smoke:
//! small graphs, shape-identical JSON).

use bench_suite::json::JsonWriter;
use bench_suite::obs::ObsSession;
use bench_suite::{emit_telemetry, print_row, Args};
use datalog::{parse, Engine, RetractOutcome, StorageKind};
use std::time::Instant;
use workloads::graphs;

const TC_PROGRAM: &str = r#"
    .decl edge(x: number, y: number)
    .decl path(x: number, y: number)
    .output path
    path(x, y) :- edge(x, y).
    path(x, z) :- path(x, y), edge(y, z).
"#;

/// A retraction scenario: the full edge set and the batch to withdraw.
struct Scenario {
    name: &'static str,
    edges: Vec<(u64, u64)>,
    gone: Vec<(u64, u64)>,
}

/// Chain sized so the closure holds ≥ `1_000_000 × scale` tuples
/// (closure of an n-node chain is n(n−1)/2), cutting the trailing 1% of
/// edges.
fn scenario_chain_tail(scale: usize, quick: bool) -> Scenario {
    let n: u64 = if quick {
        200
    } else {
        // n(n−1)/2 ≥ 1e6·scale  ⇒  n ≈ √(2e6·scale)
        (2_000_000.0 * scale as f64).sqrt().ceil() as u64 + 1
    };
    let edges = graphs::chain(n);
    let cut = (edges.len() / 100).max(2);
    let gone = edges[edges.len() - cut..].to_vec();
    Scenario {
        name: "chain_tail_1pct",
        edges,
        gone,
    }
}

/// Grid interior cuts: most overdeleted paths have alternative routes, so
/// this measures the rederivation phase rather than pure deletion.
fn scenario_grid_rederive(quick: bool, seed: u64) -> Scenario {
    let side = if quick { 6 } else { 14 };
    let edges = graphs::grid(side);
    let mut gone = Vec::new();
    let mut x = seed | 1;
    while gone.len() < (edges.len() / 50).max(2) {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let e = edges[((x >> 33) as usize) % edges.len()];
        if !gone.contains(&e) {
            gone.push(e);
        }
    }
    Scenario {
        name: "grid_rederive",
        edges,
        gone,
    }
}

fn build_engine(edges: &[(u64, u64)], threads: usize) -> Engine {
    let program = parse(TC_PROGRAM).unwrap();
    let mut engine = Engine::new(&program, StorageKind::SpecBTree, threads).unwrap();
    engine
        .add_facts("edge", edges.iter().map(|&(a, b)| vec![a, b]))
        .unwrap();
    engine
}

struct Sample {
    threads: usize,
    retract_seconds: f64,
    scratch_run_seconds: f64,
    outcome: RetractOutcome,
}

/// Times one retraction at `threads` workers against a from-scratch
/// re-evaluation of the surviving EDB (run time only — fact loading
/// excluded, which makes the baseline strictly conservative), and checks
/// both land on the same closure. Each side keeps its best of `reps`
/// (retraction is destructive, so every rep rebuilds the closure).
fn measure(sc: &Scenario, threads: usize, reps: usize) -> Sample {
    let mut best: Option<Sample> = None;
    for _ in 0..reps {
        let s = measure_once(sc, threads);
        best = Some(match best {
            None => s,
            Some(b) => Sample {
                threads,
                retract_seconds: b.retract_seconds.min(s.retract_seconds),
                scratch_run_seconds: b.scratch_run_seconds.min(s.scratch_run_seconds),
                outcome: if s.retract_seconds < b.retract_seconds {
                    s.outcome
                } else {
                    b.outcome
                },
            },
        });
    }
    best.expect("reps >= 1")
}

fn measure_once(sc: &Scenario, threads: usize) -> Sample {
    // Incremental side: full closure, then the retraction batch.
    let mut eng = build_engine(&sc.edges, threads);
    eng.run().unwrap();
    let batch: Vec<(String, Vec<u64>)> = sc
        .gone
        .iter()
        .map(|&(a, b)| ("edge".to_string(), vec![a, b]))
        .collect();
    let t0 = Instant::now();
    let outcome = eng.retract_facts(batch).unwrap();
    let retract_seconds = t0.elapsed().as_secs_f64();

    // From-scratch side: surviving edges only, same thread count.
    let kept: Vec<(u64, u64)> = sc
        .edges
        .iter()
        .copied()
        .filter(|e| !sc.gone.contains(e))
        .collect();
    let mut scratch = build_engine(&kept, threads);
    let t0 = Instant::now();
    scratch.run().unwrap();
    let scratch_run_seconds = t0.elapsed().as_secs_f64();

    assert_eq!(
        eng.relation_len("path").unwrap(),
        scratch.relation_len("path").unwrap(),
        "{}@{threads}: retraction and recompute disagree",
        sc.name
    );
    Sample {
        threads,
        retract_seconds,
        scratch_run_seconds,
        outcome,
    }
}

fn main() {
    let args = Args::parse();
    let obs = ObsSession::start("retract", &args);
    let scale = if args.scale == 0 { 1 } else { args.scale };
    let threads = if !args.threads.is_empty() {
        args.threads.clone()
    } else if args.quick {
        vec![1, 2, 4, 8]
    } else {
        vec![1, 8]
    };
    let top = *threads.iter().max().unwrap();
    let reps = if args.quick { 1 } else { 3 };
    const TARGET_RATIO: f64 = 0.25;

    let scenarios = [
        scenario_chain_tail(scale, args.quick),
        scenario_grid_rederive(args.quick, args.seed),
    ];

    let mut json = JsonWriter::new();
    json.begin_object();
    json.field_str("bench", "retract");
    json.field_bool("quick", args.quick);
    json.field_f64("target_ratio", TARGET_RATIO, 2);
    json.begin_array_field("scenarios");

    let mut headline_pass = true;
    for sc in &scenarios {
        println!(
            "== {}: {} edges, retracting {} ({}%) ==",
            sc.name,
            sc.edges.len(),
            sc.gone.len(),
            sc.gone.len() * 100 / sc.edges.len().max(1),
        );
        print_row(
            args.csv,
            "threads",
            &[
                "retract ms".into(),
                "scratch ms".into(),
                "ratio".into(),
                "overdeleted".into(),
                "rederived".into(),
            ],
        );

        let mut samples = Vec::new();
        for &t in &threads {
            let s = measure(sc, t, reps);
            print_row(
                args.csv,
                &t.to_string(),
                &[
                    format!("{:.3}", s.retract_seconds * 1e3),
                    format!("{:.3}", s.scratch_run_seconds * 1e3),
                    format!("{:.4}", s.retract_seconds / s.scratch_run_seconds),
                    s.outcome.overdeleted.to_string(),
                    s.outcome.rederived.to_string(),
                ],
            );
            println!(
                "    phases ms: overdelete {:.1} | delete {:.1} | rederive {:.1} | fallback {:.1}",
                s.outcome.overdelete_seconds * 1e3,
                s.outcome.delete_seconds * 1e3,
                s.outcome.rederive_seconds * 1e3,
                s.outcome.fallback_seconds * 1e3,
            );
            samples.push(s);
        }

        let at_top = samples
            .iter()
            .find(|s| s.threads == top)
            .expect("top thread count measured");
        let ratio = at_top.retract_seconds / at_top.scratch_run_seconds;
        let pass = ratio <= TARGET_RATIO;
        if sc.name == "chain_tail_1pct" {
            headline_pass = pass;
        }
        println!(
            "-- {}: retract/recompute ratio at {top} threads: {ratio:.4} \
             (target ≤ {TARGET_RATIO}) — {}\n",
            sc.name,
            if pass { "PASS" } else { "MISS" }
        );

        json.begin_object();
        json.field_str("name", sc.name);
        json.field_u64("edges", sc.edges.len() as u64);
        json.field_u64("retracted_edges", sc.gone.len() as u64);
        json.field_u64("retracted_inputs", at_top.outcome.retracted_inputs);
        json.field_u64("overdeleted", at_top.outcome.overdeleted);
        json.field_u64("rederived", at_top.outcome.rederived);
        json.field_f64("net_removed", at_top.outcome.net_removed as f64, 0);
        json.field_u64("top_threads", top as u64);
        json.field_f64("ratio_at_top", ratio, 4);
        json.field_bool("pass", pass);
        json.begin_array_field("results");
        for s in &samples {
            json.begin_object();
            json.field_u64("threads", s.threads as u64);
            json.field_f64("retract_seconds", s.retract_seconds, 6);
            json.field_f64("scratch_run_seconds", s.scratch_run_seconds, 6);
            json.field_f64("overdelete_seconds", s.outcome.overdelete_seconds, 6);
            json.field_f64("delete_seconds", s.outcome.delete_seconds, 6);
            json.field_f64("rederive_seconds", s.outcome.rederive_seconds, 6);
            json.field_f64("fallback_seconds", s.outcome.fallback_seconds, 6);
            json.field_f64("ratio", s.retract_seconds / s.scratch_run_seconds, 4);
            json.end_object();
        }
        json.end_array();
        json.end_object();
    }

    json.end_array();
    json.field_bool("headline_pass", headline_pass);
    json.end_object();
    let out = "BENCH_retract.json";
    std::fs::write(out, json.finish()).expect("write BENCH_retract.json");
    println!("wrote {out}");
    emit_telemetry("retract");
    obs.finish();
}
