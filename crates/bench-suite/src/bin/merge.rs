//! Merge-phase study: sequential vs parallel structure-aware delta merge.
//!
//! Reproduces the inter-iteration merge of semi-naive evaluation in
//! isolation: a target tree holding a mid-fixpoint prefix of the transitive
//! closure and a source tree holding the next delta (with duplicates, like
//! a real `new` relation) are merged with (a) the sequential per-tuple
//! `insert_all` baseline, (b) the parallel partition-by-target-separators
//! merge at several worker counts, and (c) the rightmost-spine splice fast
//! path on an append-shaped delta. Also writes a machine-readable snapshot
//! to `BENCH_merge.json` in the current directory.
//!
//! Flags: `--scale N` (graph size multiplier, default 1), `--threads
//! 1,2,4,8`, `--seed N`, `--csv`, `--quick` (CI smoke: tiny graphs, one
//! repetition).

use bench_suite::json::JsonWriter;
use bench_suite::obs::ObsSession;
use bench_suite::{emit_telemetry, print_row, Args};
use specbtree::BTreeSet;
use std::time::Instant;
use workloads::graphs;

type Tree = BTreeSet<2>;

/// Deterministic Fisher–Yates shuffle (splitmix-style LCG, no external RNG).
fn shuffle(v: &mut [[u64; 2]], seed: u64) {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for i in (1..v.len()).rev() {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = ((x >> 33) as usize) % (i + 1);
        v.swap(i, j);
    }
}

/// A merge scenario: the target's contents and the delta to fold in.
struct Scenario {
    target: Vec<[u64; 2]>,
    delta: Vec<[u64; 2]>,
    /// Tuples in `delta` that are genuinely new (not already in `target`).
    new_tuples: u64,
}

/// Mid-fixpoint shape: a random 70% of the closure is already merged, the
/// delta is the remaining 30% plus a slice of duplicates (a real `new`
/// relation re-derives tuples the full relation already holds).
fn scenario_random(closure: &[(u64, u64)], seed: u64) -> Scenario {
    let mut tuples: Vec<[u64; 2]> = closure.iter().map(|&(a, b)| [a, b]).collect();
    shuffle(&mut tuples, seed);
    let cut = tuples.len() * 7 / 10;
    let target = tuples[..cut].to_vec();
    let mut delta = tuples[cut..].to_vec();
    let new_tuples = delta.len() as u64;
    // ~10% of the target re-derived into the delta as duplicate hits.
    delta.extend(target.iter().step_by(10).copied());
    shuffle(&mut delta, seed ^ 0xDEAD);
    Scenario {
        target,
        delta,
        new_tuples,
    }
}

/// Append shape: the delta sorts entirely after the target's maximum —
/// the splice fast path's territory.
fn scenario_append(closure: &[(u64, u64)]) -> Scenario {
    let mut tuples: Vec<[u64; 2]> = closure.iter().map(|&(a, b)| [a, b]).collect();
    tuples.sort_unstable();
    tuples.dedup();
    let cut = tuples.len() * 7 / 10;
    Scenario {
        target: tuples[..cut].to_vec(),
        delta: tuples[cut..].to_vec(),
        new_tuples: (tuples.len() - cut) as u64,
    }
}

fn build(tuples: &[[u64; 2]]) -> Tree {
    let t = Tree::new();
    for k in tuples {
        t.insert(*k);
    }
    t
}

/// One measured configuration.
#[derive(Clone)]
struct Sample {
    mode: &'static str,
    threads: usize,
    seconds: f64,
    added: u64,
    /// Splice fast-path engagements during the timed run (0 when the
    /// telemetry feature is off).
    splices: u64,
}

/// Times one merge; trees are rebuilt outside the timer.
fn measure_once(sc: &Scenario, mode: &'static str, threads: usize) -> Sample {
    let dst = build(&sc.target);
    let src = build(&sc.delta);
    let splice_before = telemetry::snapshot().counter("specbtree.merge_splice");
    let t0 = Instant::now();
    let n = if threads <= 1 && (mode == "sequential" || mode == "append_sequential") {
        let before = dst.len() as u64;
        dst.insert_all(&src);
        dst.len() as u64 - before
    } else {
        dst.insert_all_parallel(&src, threads)
    };
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(n, sc.new_tuples, "{mode}@{threads}: wrong added count");
    assert_eq!(
        dst.len(),
        sc.target.len() + sc.new_tuples as usize,
        "{mode}@{threads}: wrong merged size"
    );
    Sample {
        mode,
        threads,
        seconds: secs,
        added: n,
        splices: telemetry::snapshot().counter("specbtree.merge_splice") - splice_before,
    }
}

/// Best-of-`reps` over *interleaved* rounds: every configuration runs once
/// per round, so a slow machine phase (CPU steal on shared hosts) hits all
/// modes of a round alike instead of biasing whichever mode it landed on.
fn measure_all(configs: &[(&Scenario, &'static str, usize)], reps: usize) -> Vec<Sample> {
    let mut best: Vec<Option<Sample>> = vec![None; configs.len()];
    for _ in 0..reps.max(1) {
        for (slot, &(sc, mode, threads)) in best.iter_mut().zip(configs) {
            let s = measure_once(sc, mode, threads);
            if slot.as_ref().is_none_or(|b| s.seconds < b.seconds) {
                *slot = Some(s);
            }
        }
    }
    best.into_iter().map(|s| s.unwrap()).collect()
}

fn main() {
    let args = Args::parse();
    let obs = ObsSession::start("merge", &args);
    let scale = if args.scale == 0 { 1 } else { args.scale };
    let threads = if args.threads.is_empty() {
        vec![1, 2, 4, 8]
    } else {
        args.threads.clone()
    };
    let reps = if args.quick { 1 } else { 11 };

    // The same three TC regimes the scheduler study uses: long chain (many
    // tiny deltas), acyclic grid (medium deltas), cyclic random graph (fat
    // deltas). The closure is precomputed once; the merge phase is then
    // measured in isolation.
    let workloads: Vec<(&str, Vec<(u64, u64)>)> = if args.quick {
        vec![
            ("chain_tc", graphs::chain(64)),
            ("grid_tc", graphs::grid(8)),
            ("random_tc", graphs::random_graph(60, 2, args.seed)),
        ]
    } else {
        vec![
            ("chain_tc", graphs::chain(320 * scale as u64)),
            ("grid_tc", graphs::grid(14 * scale as u64)),
            (
                "random_tc",
                graphs::random_graph(220 * scale as u64, 2, args.seed),
            ),
        ]
    };

    let top = *threads.iter().max().unwrap();
    let mut json = JsonWriter::new();
    json.begin_object();
    json.field_str("bench", "merge");
    json.field_bool("quick", args.quick);
    json.field_u64("reps", reps as u64);
    json.begin_array_field("workloads");

    for (name, edges) in &workloads {
        let closure: Vec<(u64, u64)> = graphs::reference_tc(edges).into_iter().collect();
        let random = scenario_random(&closure, args.seed);
        let append = scenario_append(&closure);
        println!(
            "== {name}: {} edges, closure {}, target {}, delta {} (+{} dups) ==",
            edges.len(),
            closure.len(),
            random.target.len(),
            random.new_tuples,
            random.delta.len() as u64 - random.new_tuples,
        );
        print_row(
            args.csv,
            "mode/threads",
            &["ms".into(), "added".into(), "splices".into()],
        );

        let mut configs: Vec<(&Scenario, &'static str, usize)> = Vec::new();
        configs.push((&random, "sequential", 1));
        for &t in &threads {
            configs.push((&random, "parallel", t));
        }
        configs.push((&append, "append_sequential", 1));
        for &t in &threads {
            configs.push((&append, "splice", t));
        }
        let samples = measure_all(&configs, reps);
        for s in &samples {
            print_row(
                args.csv,
                &format!("{}/{}", s.mode, s.threads),
                &[
                    format!("{:.3}", s.seconds * 1e3),
                    s.added.to_string(),
                    s.splices.to_string(),
                ],
            );
        }

        let seq = samples.iter().find(|s| s.mode == "sequential").unwrap();
        let par = samples
            .iter()
            .find(|s| s.mode == "parallel" && s.threads == top)
            .unwrap();
        let speedup = seq.seconds / par.seconds;
        let splices: u64 = samples
            .iter()
            .filter(|s| s.mode == "splice")
            .map(|s| s.splices)
            .sum();
        println!(
            "-- {name}: parallel merge speedup at {top} threads: {speedup:.2}x, \
             splice engagements on append delta: {splices}\n"
        );

        json.begin_object();
        json.field_str("name", name);
        json.field_u64("edges", edges.len() as u64);
        json.field_u64("closure", closure.len() as u64);
        json.field_u64("target", random.target.len() as u64);
        json.field_u64("delta", random.delta.len() as u64);
        json.field_f64(
            &format!("speedup_parallel_vs_sequential_at_{top}_threads"),
            speedup,
            4,
        );
        json.field_u64("splice_engagements", splices);
        json.begin_array_field("results");
        for s in &samples {
            json.begin_object();
            json.field_str("mode", s.mode);
            json.field_u64("threads", s.threads as u64);
            json.field_f64("seconds", s.seconds, 6);
            json.field_u64("added", s.added);
            json.field_u64("splices", s.splices);
            json.end_object();
        }
        json.end_array();
        json.end_object();
    }

    json.end_array();
    json.end_object();
    let out = "BENCH_merge.json";
    std::fs::write(out, json.finish()).expect("write BENCH_merge.json");
    println!("wrote {out}");
    emit_telemetry("merge");
    obs.finish();
}
