//! Figure 4 — parallel performance of insert operations (paper §4.2).
//!
//! Strong scaling: a fixed set of 2D points is partitioned among T threads
//! which insert concurrently. Parts: (a) ordered / (b) random with the
//! paper's single-socket thread sweep, (c) ordered / (d) random with the
//! multi-socket sweep. Cells are million inserts/second.
//!
//! Contestants: the optimistic B-tree with and without hints, Google-B-tree
//! analog behind a global lock, the parallel-reduction B-tree, and the
//! TBB-analog concurrent hash set.
//!
//! `--scale N` sets the total element count (default 1,000,000; the paper
//! uses 100M — pass `--scale 100000000` on a big machine). `--threads`
//! overrides the sweep.
//!
//! Note: scaling beyond the physical core count of the host only measures
//! oversubscription; the *shape* (which structure wins, how the global
//! lock flatlines) is what this reproduces.

use baselines::gbtree::GBTreeSet;
use baselines::global_lock::GlobalLock;
use baselines::lockcoupling::LockCouplingBTree;
use baselines::reduction::reduce_insert;
use baselines::splitorder::SplitOrderedSet;
use bench_suite::obs::ObsSession;
use bench_suite::{emit_telemetry, fmt_mops, print_row, Args};
use specbtree::BTreeSet;
use workloads::points::{partition_batches, points_2d};
use workloads::Stopwatch;

const CONTESTANTS: [&str; 6] = [
    "btree",
    "btree (n/h)",
    "google btree",
    "reduction btree",
    "TBB hashset",
    "lock-coupling btree",
];

fn run_one(name: &str, batches: &[Vec<[u64; 2]>], expected: usize) -> f64 {
    let sw = Stopwatch::start();
    match name {
        "btree" | "btree (n/h)" => {
            let hints = name == "btree";
            let tree: BTreeSet<2> = BTreeSet::new();
            std::thread::scope(|s| {
                for batch in batches {
                    let tree = &tree;
                    s.spawn(move || {
                        if hints {
                            let mut h = tree.create_hints();
                            for t in batch {
                                tree.insert_hinted(*t, &mut h);
                            }
                        } else {
                            for t in batch {
                                tree.insert(*t);
                            }
                        }
                    });
                }
            });
            let secs = sw.secs();
            assert_eq!(tree.len(), expected);
            expected as f64 / secs / 1e6
        }
        "google btree" => {
            let tree = GlobalLock::new(GBTreeSet::new());
            std::thread::scope(|s| {
                for batch in batches {
                    let tree = &tree;
                    s.spawn(move || {
                        for t in batch {
                            tree.with(|set| set.insert(*t));
                        }
                    });
                }
            });
            let secs = sw.secs();
            assert_eq!(tree.with(|s| s.len()), expected);
            expected as f64 / secs / 1e6
        }
        "reduction btree" => {
            let set = reduce_insert(batches.to_vec());
            let secs = sw.secs();
            assert_eq!(set.len(), expected);
            expected as f64 / secs / 1e6
        }
        "TBB hashset" => {
            let set: SplitOrderedSet<[u64; 2]> = SplitOrderedSet::new();
            std::thread::scope(|s| {
                for batch in batches {
                    let set = &set;
                    s.spawn(move || {
                        for t in batch {
                            set.insert(*t);
                        }
                    });
                }
            });
            let secs = sw.secs();
            assert_eq!(set.len(), expected);
            expected as f64 / secs / 1e6
        }
        "lock-coupling btree" => {
            // Ablation beyond the paper: classical pessimistic fine-grained
            // locking (see baselines::lockcoupling).
            let tree: LockCouplingBTree<[u64; 2]> = LockCouplingBTree::new();
            std::thread::scope(|s| {
                for batch in batches {
                    let tree = &tree;
                    s.spawn(move || {
                        for t in batch {
                            tree.insert(*t);
                        }
                    });
                }
            });
            let secs = sw.secs();
            assert_eq!(tree.len(), expected);
            expected as f64 / secs / 1e6
        }
        other => panic!("unknown contestant {other}"),
    }
}

fn main() {
    let args = Args::parse();
    let obs = ObsSession::start("fig4", &args);
    let total = if args.scale == 0 {
        1_000_000
    } else {
        args.scale
    };
    let side = (total as f64).sqrt() as u64;

    let parts: [(&str, bool, Vec<usize>); 4] = [
        ("a", true, vec![1, 2, 4, 8, 12, 16]),
        ("b", false, vec![1, 2, 4, 8, 12, 16]),
        ("c", true, vec![1, 4, 8, 16, 24, 32]),
        ("d", false, vec![1, 4, 8, 16, 24, 32]),
    ];

    for (part, ordered, default_threads) in parts {
        if !args.wants_part(part) {
            continue;
        }
        let threads = if args.threads.is_empty() {
            default_threads
        } else {
            args.threads.clone()
        };
        let socket = if part == "a" || part == "b" {
            "single socket"
        } else {
            "multi socket"
        };
        let order = if ordered { "ordered" } else { "random" };
        println!(
            "\n== Figure 4{part}: parallel insertion ({order}, {socket}), {} elements [M inserts/s]",
            side * side
        );
        print_row(
            args.csv,
            "threads",
            &threads.iter().map(|t| t.to_string()).collect::<Vec<_>>(),
        );
        let pts = points_2d(side, ordered, args.seed);
        for name in CONTESTANTS {
            let mut cells = Vec::new();
            for &t in &threads {
                let batches = partition_batches(&pts, t);
                cells.push(fmt_mops(run_one(name, &batches, pts.len())));
            }
            print_row(args.csv, name, &cells);
        }
    }

    emit_telemetry("fig4");
    obs.finish();
}
