//! Memory-layout study: the `gapped` leaf layout + latch-free interior
//! descent against the packed `fastpath` layer it builds on, and against
//! the historical boxed layout.
//!
//! The comparison needs three builds of the same binary, because the
//! layers are compile-time features:
//!
//! ```text
//! cargo run --release --bin layout                      # gapped (default)
//! cargo run --release --bin layout \
//!     --no-default-features --features fastpath         # packed fastpath
//! cargo run --release --bin layout --no-default-features  # boxed
//! ```
//!
//! Each run measures point inserts (sorted and random order), point
//! lookups and a full ordered scan on the concurrent B-tree across thread
//! counts, and writes its side to `BENCH_layout.<variant>.json`. Once all
//! three variants' files exist, they are merged into `BENCH_layout.json`
//! with the gapped layout's speedup over each baseline — so running the
//! three commands (in any order) produces the final report.
//!
//! Flags: `--scale N` (tuples = N × 1M, default 1), `--threads 1,4,8`,
//! `--seed N`, `--csv`, `--quick` (CI smoke: 50k tuples, one repetition).

use bench_suite::json::JsonWriter;
use bench_suite::obs::ObsSession;
use bench_suite::{emit_telemetry, fmt_mops, print_row, Args};
use specbtree::BTreeSet;
use std::time::Instant;
use workloads::rng::splitmix;

/// Which layout this binary was compiled on.
const VARIANT: &str = if cfg!(feature = "gapped") {
    "gapped"
} else if cfg!(feature = "fastpath") {
    "fastpath"
} else {
    "boxed"
};

/// The other two variants, for sibling-file discovery.
const SIBLINGS: [&str; 2] = if cfg!(feature = "gapped") {
    ["fastpath", "boxed"]
} else if cfg!(feature = "fastpath") {
    ["gapped", "boxed"]
} else {
    ["gapped", "fastpath"]
};

/// One measured configuration.
struct Sample {
    op: &'static str,
    threads: usize,
    seconds: f64,
    mops: f64,
}

/// The keys for one run: `2^?` distinct binary tuples, in insertion order.
fn make_keys(n: usize, random: bool, seed: u64) -> Vec<[u64; 2]> {
    let mut keys: Vec<[u64; 2]> = (0..n as u64).map(|i| [i / 16, i % 16]).collect();
    if random {
        // Fisher–Yates driven by splitmix64: a permutation, so the tuple
        // set (and final tree shape) matches the sorted run exactly.
        let mut state = seed;
        for i in (1..keys.len()).rev() {
            let j = (splitmix(&mut state) % (i as u64 + 1)) as usize;
            keys.swap(i, j);
        }
    }
    keys
}

/// Builds a tree holding every key (hinted single-thread fill).
fn fill(keys: &[[u64; 2]]) -> BTreeSet<2> {
    let tree: BTreeSet<2> = BTreeSet::new();
    let mut hints = tree.create_hints();
    for &k in keys {
        tree.insert_hinted(k, &mut hints);
    }
    tree
}

/// Times `threads` workers inserting disjoint slices of `keys` into a
/// fresh tree, returning the wall time of the slowest-to-finish run.
fn time_insert(keys: &[[u64; 2]], threads: usize) -> f64 {
    let tree: BTreeSet<2> = BTreeSet::new();
    let per = keys.len().div_ceil(threads);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for chunk in keys.chunks(per) {
            let tree = &tree;
            s.spawn(move || {
                let mut hints = tree.create_hints();
                for &k in chunk {
                    tree.insert_hinted(k, &mut hints);
                }
            });
        }
    });
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(tree.len(), keys.len(), "insert lost tuples");
    secs
}

/// Times `threads` workers probing disjoint slices of `probes` against a
/// pre-built tree.
fn time_lookup(tree: &BTreeSet<2>, probes: &[[u64; 2]], threads: usize) -> f64 {
    let per = probes.len().div_ceil(threads);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for chunk in probes.chunks(per) {
            s.spawn(move || {
                let mut hints = tree.create_hints();
                let mut found = 0usize;
                for k in chunk {
                    found += tree.contains_hinted(k, &mut hints) as usize;
                }
                assert_eq!(found, chunk.len(), "lookup missed present tuples");
            });
        }
    });
    t0.elapsed().as_secs_f64()
}

/// Times one full ordered scan.
fn time_scan(tree: &BTreeSet<2>) -> f64 {
    let t0 = Instant::now();
    let count = tree.iter().count();
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(count, tree.len(), "scan lost tuples");
    secs
}

/// Best-of-`reps` wrapper turning wall time into a [`Sample`].
fn measure(
    op: &'static str,
    threads: usize,
    n: usize,
    reps: usize,
    mut run: impl FnMut() -> f64,
) -> Sample {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        best = best.min(run());
    }
    Sample {
        op,
        threads,
        seconds: best,
        mops: n as f64 / best / 1e6,
    }
}

/// Extracts `(op, threads, seconds)` rows from a `BENCH_layout.<variant>`
/// document. The format is our own (one field per line, fields in emission
/// order), so a line scanner is reliable here.
fn rows(doc: &str) -> Vec<(String, u64, f64)> {
    let mut out = Vec::new();
    let mut op: Option<String> = None;
    let mut threads: Option<u64> = None;
    for line in doc.lines() {
        let line = line.trim().trim_end_matches(',');
        if let Some(v) = line.strip_prefix("\"op\": \"") {
            op = v.strip_suffix('"').map(str::to_string);
        } else if let Some(v) = line.strip_prefix("\"threads\": ") {
            threads = v.parse().ok();
        } else if let Some(v) = line.strip_prefix("\"seconds\": ") {
            if let (Some(o), Some(t), Ok(s)) = (op.take(), threads.take(), v.parse()) {
                out.push((o, t, s));
            }
        }
    }
    out
}

/// Merges the three variants' documents into `BENCH_layout.json`,
/// reporting the gapped layout's speedup over each baseline per
/// configuration (>1 means gapped is faster).
fn merge(gapped_doc: &str, fast_doc: &str, boxed_doc: &str) {
    let gapped = rows(gapped_doc);
    let fast = rows(fast_doc);
    let boxed = rows(boxed_doc);

    let mut json = JsonWriter::new();
    json.begin_object();
    json.field_str("bench", "layout");
    json.begin_array_field("speedups");
    println!("-- gapped vs fastpath | boxed --");
    for (op, threads, gs) in &gapped {
        let find = |side: &[(String, u64, f64)]| {
            side.iter()
                .find(|(o, t, _)| o == op && *t == *threads)
                .map(|(_, _, s)| *s)
                .filter(|s| *s > 0.0)
        };
        let (Some(fs), Some(bs)) = (find(&fast), find(&boxed)) else {
            continue;
        };
        if *gs <= 0.0 {
            continue;
        }
        let vs_fast = fs / gs;
        let vs_boxed = bs / gs;
        println!("{op}/{threads}t: {vs_fast:.2}x | {vs_boxed:.2}x");
        json.begin_object();
        json.field_str("op", op);
        json.field_u64("threads", *threads);
        json.field_f64("gapped_seconds", *gs, 6);
        json.field_f64("fastpath_seconds", fs, 6);
        json.field_f64("boxed_seconds", bs, 6);
        json.field_f64("speedup_vs_fastpath", vs_fast, 4);
        json.field_f64("speedup_vs_boxed", vs_boxed, 4);
        json.end_object();
    }
    json.end_array();
    json.field_raw("gapped", gapped_doc.trim_end());
    json.field_raw("fastpath", fast_doc.trim_end());
    json.field_raw("boxed", boxed_doc.trim_end());
    json.end_object();
    std::fs::write("BENCH_layout.json", json.finish()).expect("write BENCH_layout.json");
    println!("wrote BENCH_layout.json");
}

fn main() {
    let args = Args::parse();
    let obs = ObsSession::start("layout", &args);
    let scale = if args.scale == 0 { 1 } else { args.scale };
    let n = if args.quick {
        50_000
    } else {
        1_000_000 * scale
    };
    // Quick mode still takes the best of several repetitions: at 50k
    // tuples a single run's wall time is dominated by scheduler noise,
    // and the best-of filter is what makes the emitted speedups stable
    // enough for CI shape checks and for the headline comparison.
    // Full runs take best-of-5: single-core containers schedule the
    // harness alongside the bench, and 3 reps leave +-10% scheduling
    // noise in the 1-thread rows that the speedup ratios key off.
    let reps = 5;
    let threads = if args.threads.is_empty() {
        vec![1, 4, 8]
    } else {
        args.threads.clone()
    };

    let simd = if cfg!(target_arch = "x86_64") && std::arch::is_x86_feature_detected!("avx2") {
        "avx2"
    } else {
        "scalar"
    };
    println!("== layout: variant {VARIANT}, {n} tuples, simd {simd} ==");
    print_row(args.csv, "op/threads", &["ms".into(), "Mops/s".into()]);

    let sorted = make_keys(n, false, args.seed);
    let random = make_keys(n, true, args.seed);
    let mut samples: Vec<Sample> = Vec::new();
    let mut push = |s: Sample| {
        print_row(
            args.csv,
            &format!("{}/{}", s.op, s.threads),
            &[format!("{:.2}", s.seconds * 1e3), fmt_mops(s.mops)],
        );
        samples.push(s);
    };

    for &t in &threads {
        push(measure("insert_sorted", t, n, reps, || {
            time_insert(&sorted, t)
        }));
        push(measure("insert_random", t, n, reps, || {
            time_insert(&random, t)
        }));
    }
    let tree = fill(&sorted);
    for &t in &threads {
        push(measure("lookup_sorted", t, n, reps, || {
            time_lookup(&tree, &sorted, t)
        }));
        push(measure("lookup_random", t, n, reps, || {
            time_lookup(&tree, &random, t)
        }));
    }
    push(measure("scan", 1, n, reps, || time_scan(&tree)));

    let arena = tree.arena_stats();
    println!(
        "-- arena: {} slabs, {} bytes used / {} reserved --",
        arena.slabs, arena.bytes_used, arena.bytes_reserved
    );

    let mut json = JsonWriter::new();
    json.begin_object();
    json.field_str("bench", "layout");
    json.field_str("variant", VARIANT);
    json.field_bool("quick", args.quick);
    json.field_u64("n", n as u64);
    json.field_u64("reps", reps as u64);
    json.field_str("simd", simd);
    json.begin_object_field("arena");
    json.field_u64("slabs", arena.slabs as u64);
    json.field_u64("bytes_used", arena.bytes_used as u64);
    json.field_u64("bytes_reserved", arena.bytes_reserved as u64);
    json.end_object();
    json.begin_array_field("results");
    for s in &samples {
        json.begin_object();
        json.field_str("op", s.op);
        json.field_u64("threads", s.threads as u64);
        json.field_f64("seconds", s.seconds, 6);
        json.field_f64("mops", s.mops, 3);
        json.end_object();
    }
    json.end_array();
    json.end_object();
    let doc = json.finish();

    let out = format!("BENCH_layout.{VARIANT}.json");
    std::fs::write(&out, &doc).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");

    let read = |variant: &str| {
        if variant == VARIANT {
            Some(doc.clone())
        } else {
            std::fs::read_to_string(format!("BENCH_layout.{variant}.json")).ok()
        }
    };
    match (read("gapped"), read("fastpath"), read("boxed")) {
        (Some(g), Some(f), Some(b)) => merge(&g, &f, &b),
        _ => {
            let missing: Vec<&str> = SIBLINGS
                .iter()
                .copied()
                .filter(|v| !std::path::Path::new(&format!("BENCH_layout.{v}.json")).exists())
                .collect();
            println!(
                "(missing {} — run the other variant(s) to produce the merged report)",
                missing.join(", ")
            );
        }
    }

    emit_telemetry("layout");
    obs.finish();
}
