//! Figure 5 — comparison of data structures inside the Datalog engine on
//! two real-world-shaped analyses (paper §4.3).
//!
//! Part (a): the Doop-substitute context-insensitive points-to analysis
//! (insertion heavy). Part (b): the EC2-substitute security vulnerability
//! analysis (read heavy). Rows are relation backends, columns are thread
//! counts, cells are end-to-end runtime in seconds (lower is better).
//!
//! `--scale N` scales the generated fact bases (default 6). `--threads`
//! overrides the sweep (default 1,2,4,8).

use bench_suite::obs::ObsSession;
use bench_suite::{emit_telemetry, print_row, Args};
use datalog::{Engine, StorageKind};
use workloads::network::{self, NetworkConfig};
use workloads::pointsto::{self, PointsToConfig};
use workloads::Stopwatch;

fn main() {
    let args = Args::parse();
    let obs = ObsSession::start("fig5", &args);
    let scale = if args.scale == 0 { 6 } else { args.scale };
    let threads = if args.threads.is_empty() {
        vec![1, 2, 4, 8]
    } else {
        args.threads.clone()
    };

    if args.wants_part("a") {
        // Like the paper ("the total time for analysis of all 11 DaCapo
        // benchmarks"), part (a) analyses a suite of 11 generated programs
        // and reports the summed runtime.
        const SUITE: usize = 11;
        println!(
            "\n== Figure 5a: context-insensitive var-points-to over {SUITE} synthetic programs (insertion heavy), scale {scale} [total runtime s]"
        );
        print_row(
            args.csv,
            "threads",
            &threads.iter().map(|t| t.to_string()).collect::<Vec<_>>(),
        );
        let suite: Vec<_> = (0..SUITE as u64)
            .map(|i| pointsto::generate_facts(&PointsToConfig::scaled(scale), args.seed + i))
            .collect();
        let program = pointsto::program();
        let mut reference: Option<usize> = None;
        for kind in StorageKind::ALL {
            let mut cells = Vec::new();
            for &t in &threads {
                let mut total = 0.0f64;
                let mut vpt_total = 0usize;
                for facts in &suite {
                    let mut engine = Engine::new(&program, kind, t).unwrap();
                    pointsto::load_facts(&mut engine, facts).unwrap();
                    let sw = Stopwatch::start();
                    engine.run().unwrap();
                    total += sw.secs();
                    vpt_total += engine.relation_len("vpt").unwrap();
                }
                cells.push(format!("{total:.3}"));
                match reference {
                    None => reference = Some(vpt_total),
                    Some(r) => assert_eq!(vpt_total, r, "{} diverged", kind.label()),
                }
            }
            print_row(args.csv, kind.label(), &cells);
        }
    }

    if args.wants_part("b") {
        println!(
            "\n== Figure 5b: security vulnerability analysis (read heavy), scale {scale} [runtime s]"
        );
        print_row(
            args.csv,
            "threads",
            &threads.iter().map(|t| t.to_string()).collect::<Vec<_>>(),
        );
        let facts = network::generate_facts(&NetworkConfig::scaled(scale), args.seed);
        let program = network::program();
        let mut reference: Option<usize> = None;
        for kind in StorageKind::ALL {
            let mut cells = Vec::new();
            for &t in &threads {
                let mut engine = Engine::new(&program, kind, t).unwrap();
                network::load_facts(&mut engine, &facts).unwrap();
                let sw = Stopwatch::start();
                engine.run().unwrap();
                cells.push(format!("{:.3}", sw.secs()));
                let reach = engine.relation_len("reach").unwrap();
                match reference {
                    None => reference = Some(reach),
                    Some(r) => assert_eq!(reach, r, "{} diverged", kind.label()),
                }
            }
            print_row(args.csv, kind.label(), &cells);
        }
    }

    emit_telemetry("fig5");
    obs.finish();
}
