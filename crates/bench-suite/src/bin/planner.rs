//! Join-planning study: cost-based literal reordering + automatic
//! secondary indexes vs hand-written join orders.
//!
//! Two scenarios, each evaluated three ways over identical data:
//!
//! - **adversarial** — planner off, program written in the worst source
//!   order a user could plausibly pick (big relation first / reverse
//!   binding with no index), which is exactly what source-order
//!   compilation executes;
//! - **planner** — planner on, *same adversarial source text*: the cost
//!   model must rescue the order and (where the binding pattern demands
//!   it) derive a column-permuted secondary index, with the index build
//!   paid inside the measured window;
//! - **best_hand** — planner off, the best order a human can write
//!   without secondary indexes.
//!
//! `chain_join` is a pure ordering problem (the right order needs no
//! index); `reverse_bind` joins through a relation's *second* column, so
//! no hand order fully fixes it — the planner's `[1,0]` index should win
//! outright.
//!
//! Writes `BENCH_planner.json` in the current directory. Flags: `--scale
//! N`, `--threads 1,2,4,8`, `--seed N`, `--csv`, `--quick` (CI smoke:
//! small relations, shape-identical JSON).

use bench_suite::json::JsonWriter;
use bench_suite::obs::ObsSession;
use bench_suite::{emit_telemetry, print_row, Args};
use datalog::{parse, Engine, EvalStats, StorageKind};
use std::time::Instant;

/// Big `hub` first, tiny `probe` last: source order full-scans `hub` as
/// the outer loop. The right order (`probe` → `hub` → `spoke`) needs no
/// secondary index at all — every join lands on a leading-column prefix.
const CHAIN_ADVERSARIAL: &str = r#"
    .decl hub(x: number, y: number)
    .decl spoke(y: number, z: number)
    .decl probe(x: number)
    .decl out(x: number, z: number)
    .output out
    out(x, z) :- hub(x, y), spoke(y, z), probe(x).
"#;
const CHAIN_BEST: &str = r#"
    .decl hub(x: number, y: number)
    .decl spoke(y: number, z: number)
    .decl probe(x: number)
    .decl out(x: number, z: number)
    .output out
    out(x, z) :- probe(x), hub(x, y), spoke(y, z).
"#;

/// `fact(y, x)` is entered through its **second** column once `probe`
/// binds `x`. Source order (already probe-first) full-scans `fact` per
/// probe; the best index-free hand order flips `fact` outermost and
/// full-scans it once. Only the planner's `[1,0]` index turns the join
/// into point probes.
const REVERSE_ADVERSARIAL: &str = r#"
    .decl probe(x: number)
    .decl fact(y: number, x: number)
    .decl link(y: number, z: number)
    .decl outr(x: number, z: number)
    .output outr
    outr(x, z) :- probe(x), fact(y, x), link(y, z).
"#;
const REVERSE_BEST: &str = r#"
    .decl probe(x: number)
    .decl fact(y: number, x: number)
    .decl link(y: number, z: number)
    .decl outr(x: number, z: number)
    .output outr
    outr(x, z) :- fact(y, x), link(y, z), probe(x).
"#;

struct Scenario {
    name: &'static str,
    adversarial: &'static str,
    best_hand: &'static str,
    output: &'static str,
    /// `(relation, tuples)` pairs loaded into every engine.
    facts: Vec<(&'static str, Vec<Vec<u64>>)>,
}

fn scenario_chain_join(scale: usize, quick: bool) -> Scenario {
    let (nx, fan, np): (u64, u64, u64) = if quick {
        (500, 20, 40)
    } else {
        (20_000 * scale as u64, 100, 100)
    };
    // hub: nx hubs × fan spokes = the big relation; spoke maps each hub
    // leaf onward; probe selects np hubs.
    let hub: Vec<Vec<u64>> = (0..nx)
        .flat_map(|x| (0..fan).map(move |k| vec![x, x * fan + k]))
        .collect();
    let spoke: Vec<Vec<u64>> = (0..nx * fan).map(|y| vec![y, y + 1]).collect();
    let probe: Vec<Vec<u64>> = (0..np).map(|i| vec![i * (nx / np)]).collect();
    Scenario {
        name: "chain_join",
        adversarial: CHAIN_ADVERSARIAL,
        best_hand: CHAIN_BEST,
        output: "out",
        facts: vec![("hub", hub), ("spoke", spoke), ("probe", probe)],
    }
}

fn scenario_reverse_bind(scale: usize, quick: bool) -> Scenario {
    let (s, domain, np): (u64, u64, u64) = if quick {
        (10_000, 500, 40)
    } else {
        (1_000_000 * scale as u64, 10_000, 200)
    };
    // fact(y, x): each x value has s/domain matching ys — the reverse
    // binding fan-in the [1,0] index serves with point probes.
    let fact: Vec<Vec<u64>> = (0..s).map(|y| vec![y, y % domain]).collect();
    let link: Vec<Vec<u64>> = (0..s).map(|y| vec![y, y + 1]).collect();
    let probe: Vec<Vec<u64>> = (0..np).map(|i| vec![i * (domain / np)]).collect();
    Scenario {
        name: "reverse_bind",
        adversarial: REVERSE_ADVERSARIAL,
        best_hand: REVERSE_BEST,
        output: "outr",
        facts: vec![("probe", probe), ("fact", fact), ("link", link)],
    }
}

struct Sample {
    seconds: f64,
    out_len: usize,
    stats: EvalStats,
}

/// Loads the scenario's facts into a fresh engine compiled from `src`
/// with the planner toggled, and times `run()` alone (fact loading
/// excluded). Index derivation and backfill happen inside `run()`, so
/// the planner variant pays its build cost inside the measured window.
fn measure_once(sc: &Scenario, src: &str, planner: bool, threads: usize) -> Sample {
    let program = parse(src).unwrap();
    let mut engine = Engine::new(&program, StorageKind::SpecBTree, threads).unwrap();
    engine.set_planner_enabled(planner);
    for (name, rows) in &sc.facts {
        engine.add_facts(name, rows.iter().cloned()).unwrap();
    }
    let t0 = Instant::now();
    engine.run().unwrap();
    Sample {
        seconds: t0.elapsed().as_secs_f64(),
        out_len: engine.relation_len(sc.output).unwrap(),
        stats: *engine.stats(),
    }
}

/// Interleaves repetitions round-robin across the three variants and
/// keeps each variant's best, so slow machine-wide drift (a noisy
/// neighbor, thermal state) hits all variants alike instead of
/// whichever variant happens to run last.
fn measure_trio(sc: &Scenario, threads: usize, reps: usize) -> (Sample, Sample, Sample) {
    let variants = [
        (sc.adversarial, false),
        (sc.adversarial, true),
        (sc.best_hand, false),
    ];
    let mut best: [Option<Sample>; 3] = [None, None, None];
    for _ in 0..reps {
        for (slot, &(src, planner)) in variants.iter().enumerate() {
            let s = measure_once(sc, src, planner, threads);
            best[slot] = Some(match best[slot].take() {
                Some(b) if b.seconds <= s.seconds => b,
                _ => s,
            });
        }
    }
    let [adv, plan, hand] = best;
    (
        adv.expect("reps >= 1"),
        plan.expect("reps >= 1"),
        hand.expect("reps >= 1"),
    )
}

fn main() {
    let args = Args::parse();
    let obs = ObsSession::start("planner", &args);
    let scale = if args.scale == 0 { 1 } else { args.scale };
    let threads = if !args.threads.is_empty() {
        args.threads.clone()
    } else if args.quick {
        vec![1, 2, 4, 8]
    } else {
        vec![1, 8]
    };
    let top = *threads.iter().max().unwrap();
    let reps = if args.quick { 1 } else { 3 };
    const TARGET_SPEEDUP: f64 = 2.0;
    const PARITY_FLOOR: f64 = 0.9;

    let scenarios = [
        scenario_chain_join(scale, args.quick),
        scenario_reverse_bind(scale, args.quick),
    ];

    let mut json = JsonWriter::new();
    json.begin_object();
    json.field_str("bench", "planner");
    json.field_bool("quick", args.quick);
    json.field_f64("target_speedup", TARGET_SPEEDUP, 2);
    json.field_f64("parity_floor", PARITY_FLOOR, 2);
    json.begin_array_field("scenarios");

    let mut headline_pass = true;
    for sc in &scenarios {
        let tuples: usize = sc.facts.iter().map(|(_, rows)| rows.len()).sum();
        println!("== {}: {} input tuples ==", sc.name, tuples);
        print_row(
            args.csv,
            "threads",
            &[
                "adversarial ms".into(),
                "planner ms".into(),
                "best-hand ms".into(),
                "speedup".into(),
                "parity".into(),
            ],
        );

        let mut rows = Vec::new();
        for &t in &threads {
            let (adv, plan, hand) = measure_trio(sc, t, reps);
            assert_eq!(
                adv.out_len, plan.out_len,
                "{}@{t}: planner changed the fixpoint",
                sc.name
            );
            assert_eq!(
                adv.out_len, hand.out_len,
                "{}@{t}: hand order changed the fixpoint",
                sc.name
            );
            let speedup = adv.seconds / plan.seconds;
            let parity = hand.seconds / plan.seconds;
            print_row(
                args.csv,
                &t.to_string(),
                &[
                    format!("{:.3}", adv.seconds * 1e3),
                    format!("{:.3}", plan.seconds * 1e3),
                    format!("{:.3}", hand.seconds * 1e3),
                    format!("{speedup:.2}x"),
                    format!("{parity:.3}"),
                ],
            );
            rows.push((t, adv, plan, hand, speedup, parity));
        }

        let (_, _, plan_top, _, speedup, parity) = rows
            .iter()
            .find(|(t, ..)| *t == top)
            .expect("top thread count measured");
        let pass = *speedup >= TARGET_SPEEDUP && *parity >= PARITY_FLOOR;
        headline_pass &= pass;
        println!(
            "-- {}: at {top} threads planner is {speedup:.2}x vs adversarial \
             (target ≥ {TARGET_SPEEDUP}x), {parity:.3} of best hand order \
             (floor {PARITY_FLOOR}) — {}",
            sc.name,
            if pass { "PASS" } else { "MISS" }
        );
        println!(
            "   planner built {} index(es); inner scans {} indexed / {} full \
             (hit ratio {:.4})\n",
            plan_top.stats.index_builds,
            plan_top.stats.inner_scans_indexed,
            plan_top.stats.inner_scans_full,
            plan_top.stats.index_hit_ratio(),
        );

        json.begin_object();
        json.field_str("name", sc.name);
        json.field_u64("input_tuples", tuples as u64);
        json.field_u64("output_tuples", plan_top.out_len as u64);
        json.field_u64("top_threads", top as u64);
        json.field_f64("speedup_vs_adversarial", *speedup, 4);
        json.field_f64("parity_vs_best_hand", *parity, 4);
        json.field_u64("index_builds", plan_top.stats.index_builds);
        json.field_f64("index_hit_ratio", plan_top.stats.index_hit_ratio(), 4);
        json.field_bool("pass", pass);
        json.begin_array_field("results");
        for (t, adv, plan, hand, speedup, parity) in &rows {
            json.begin_object();
            json.field_u64("threads", *t as u64);
            json.field_f64("adversarial_seconds", adv.seconds, 6);
            json.field_f64("planner_seconds", plan.seconds, 6);
            json.field_f64("best_hand_seconds", hand.seconds, 6);
            json.field_f64("speedup_vs_adversarial", *speedup, 4);
            json.field_f64("parity_vs_best_hand", *parity, 4);
            json.field_u64("inner_scans_indexed", plan.stats.inner_scans_indexed);
            json.field_u64("inner_scans_full", plan.stats.inner_scans_full);
            json.end_object();
        }
        json.end_array();
        json.end_object();
    }

    json.end_array();
    json.field_bool("headline_pass", headline_pass);
    json.end_object();
    let out = "BENCH_planner.json";
    std::fs::write(out, json.finish()).expect("write BENCH_planner.json");
    println!("wrote {out}");
    emit_telemetry("planner");
    obs.finish();
}
