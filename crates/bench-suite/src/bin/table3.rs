//! Table 3 — throughput inserting 32-bit integers, comparing the
//! specialized B-tree with the PALM-tree, Masstree and B-slack-tree analogs
//! (paper §4.4).
//!
//! Rows are thread counts (paper: 1, 2, 4, 8); each cell is
//! `ordered/random` throughput in million elements/second.
//!
//! `--scale N` sets the key count (default 1,000,000; paper uses 10M).

use baselines::bslack::BSlackTree;
use baselines::masstree::MasstreeAnalog;
use baselines::palm::PalmTree;
use bench_suite::obs::ObsSession;
use bench_suite::{emit_telemetry, fmt_mops, print_row, Args};
use specbtree::BTreeSet;
use workloads::points::{keys_u32, partition_batches};
use workloads::Stopwatch;

fn bench_btree(batches: &[Vec<u32>], expected: usize) -> f64 {
    let tree: BTreeSet<1> = BTreeSet::new();
    let sw = Stopwatch::start();
    std::thread::scope(|s| {
        for batch in batches {
            let tree = &tree;
            s.spawn(move || {
                let mut h = tree.create_hints();
                for &k in batch {
                    tree.insert_hinted([k as u64], &mut h);
                }
            });
        }
    });
    let secs = sw.secs();
    assert_eq!(tree.len(), expected);
    expected as f64 / secs / 1e6
}

fn bench_palm(batches: &[Vec<u32>], expected: usize) -> f64 {
    let tree: PalmTree<u32> = PalmTree::new();
    let sw = Stopwatch::start();
    std::thread::scope(|s| {
        for batch in batches {
            let tree = &tree;
            s.spawn(move || {
                for &k in batch {
                    tree.insert(k);
                }
            });
        }
    });
    tree.flush();
    let secs = sw.secs();
    assert_eq!(tree.len(), expected);
    expected as f64 / secs / 1e6
}

fn bench_masstree(batches: &[Vec<u32>], expected: usize) -> f64 {
    let tree: MasstreeAnalog<1> = MasstreeAnalog::new();
    let sw = Stopwatch::start();
    std::thread::scope(|s| {
        for batch in batches {
            let tree = &tree;
            s.spawn(move || {
                for &k in batch {
                    tree.insert([k as u64]);
                }
            });
        }
    });
    let secs = sw.secs();
    assert_eq!(tree.len(), expected);
    expected as f64 / secs / 1e6
}

fn bench_bslack(batches: &[Vec<u32>], expected: usize) -> f64 {
    let tree: BSlackTree<u32> = BSlackTree::new();
    let sw = Stopwatch::start();
    std::thread::scope(|s| {
        for batch in batches {
            let tree = &tree;
            s.spawn(move || {
                for &k in batch {
                    tree.insert(k);
                }
            });
        }
    });
    let secs = sw.secs();
    assert_eq!(tree.len(), expected);
    expected as f64 / secs / 1e6
}

fn main() {
    let args = Args::parse();
    let obs = ObsSession::start("table3", &args);
    let n = if args.scale == 0 {
        1_000_000
    } else {
        args.scale
    };
    let threads = if args.threads.is_empty() {
        vec![1, 2, 4, 8]
    } else {
        args.threads.clone()
    };

    println!(
        "\n== Table 3: throughput inserting {n} 32-bit integers [10^6 elements/s, ordered/random]"
    );
    print_row(
        args.csv,
        "Threads",
        &["B-tree", "PALM tree", "Masstree", "B-slack"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );

    let ordered = keys_u32(n, true, args.seed);
    let random = keys_u32(n, false, args.seed);

    type BenchFn = fn(&[Vec<u32>], usize) -> f64;
    let benches: [BenchFn; 4] = [bench_btree, bench_palm, bench_masstree, bench_bslack];

    for &t in &threads {
        let mut cells = Vec::new();
        for bench in benches {
            let o = bench(&partition_batches(&ordered, t), n);
            let r = bench(&partition_batches(&random, t), n);
            cells.push(format!("{}/{}", fmt_mops(o), fmt_mops(r)));
        }
        print_row(args.csv, &t.to_string(), &cells);
    }

    emit_telemetry("table3");
    obs.finish();
}
