//! # bench-suite — the paper's evaluation harness
//!
//! One binary per table/figure of the paper's §4 (see DESIGN.md's
//! per-experiment index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig3` | Figure 3 (a–f): sequential insert / membership / scan |
//! | `fig4` | Figure 4 (a–d): parallel insertion scaling |
//! | `fig5` | Figure 5 (a–b): Datalog engine end-to-end |
//! | `table2` | Table 2: workload properties & operation statistics |
//! | `table3` | Table 3: 32-bit integer insertion vs PALM/Masstree/B-slack |
//! | `sched` | scheduler study: chunk stealing vs materialize-then-split |
//!
//! All binaries accept `--scale`, `--threads` and `--seed` flags (see
//! [`Args`]); defaults are scaled down from the paper's 100M-element runs
//! so the full suite completes on a laptop. This library hosts the shared
//! pieces: a tiny CLI parser, table formatting, and the [`BenchSet`]
//! adapter that gives every §4.1 contestant a uniform surface.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use baselines::gbtree::GBTreeSet;
use baselines::hashset::HashSet as OaHashSet;
use baselines::rbtree::RbTreeSet;
use baselines::splitorder::SplitOrderedSet;
use specbtree::seq::{SeqBTreeSet, SeqHints};
use specbtree::{BTreeHints, BTreeSet};

pub mod json;
pub mod obs;

/// Writes the merged telemetry snapshot next to a bin's `BENCH_*.json`
/// (as `TELEMETRY_<name>.json`) and prints the human-readable table.
/// Silent no-op when the `telemetry` feature is off, so every bin can call
/// it unconditionally.
///
/// The document goes through the shared [`json::JsonWriter`] like every
/// `BENCH_*.json` file (same indentation and comma discipline), with the
/// same top-level keys the CI telemetry job asserts: `enabled`,
/// `counters`, `histograms` — plus `bench` naming the emitting binary.
pub fn emit_telemetry(name: &str) {
    let snap = telemetry::snapshot();
    if !snap.enabled {
        return;
    }
    let mut w = json::JsonWriter::new();
    w.begin_object();
    w.field_str("bench", name);
    w.field_bool("enabled", true);
    w.begin_object_field("counters");
    for (cname, v) in &snap.counters {
        w.field_u64(cname, *v);
    }
    w.end_object();
    w.begin_object_field("histograms");
    for h in &snap.hists {
        let buckets: Vec<String> = h
            .buckets
            .iter()
            .map(|&(b, n)| format!("[{}, {n}]", telemetry::bucket_lo(b)))
            .collect();
        w.field_raw(
            h.name,
            &format!(
                "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"buckets\": [{}]}}",
                h.count,
                h.sum,
                h.max,
                buckets.join(", ")
            ),
        );
    }
    w.end_object();
    w.end_object();
    let path = format!("TELEMETRY_{name}.json");
    std::fs::write(&path, w.finish()).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("-- telemetry ({name}) --");
    print!("{}", snap.to_table());
    println!("wrote {path}");
}

/// Minimal command-line arguments shared by the harness binaries.
#[derive(Debug, Clone)]
pub struct Args {
    /// Workload scale knob (meaning depends on the binary; see its docs).
    pub scale: usize,
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// RNG seed for shuffles/generators.
    pub seed: u64,
    /// Which figure part(s) to run (`a`, `b`, ...; empty = all).
    pub part: Option<String>,
    /// Emit machine-readable CSV instead of aligned tables.
    pub csv: bool,
    /// Shrink workloads to CI-smoke size (`--quick`).
    pub quick: bool,
    /// Write a Chrome trace-event file of the run's spans here
    /// (`--trace-out PATH`; needs the `telemetry` feature).
    pub trace_out: Option<String>,
    /// Sample the telemetry counters every N ms into `SAMPLES_<bin>.json`
    /// (`--sample-ms N`; needs the `telemetry` feature).
    pub sample_ms: Option<u64>,
    /// Shard count for sharded-storage configurations (`--shards N`;
    /// binaries that don't shard ignore it). `None` = binary default.
    pub shards: Option<usize>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            scale: 0, // 0 = binary-specific default
            threads: vec![],
            seed: 42,
            part: None,
            csv: false,
            quick: false,
            trace_out: None,
            sample_ms: None,
            shards: None,
        }
    }
}

impl Args {
    /// Parses `std::env::args()`. Unknown flags abort with a usage hint.
    pub fn parse() -> Self {
        let mut out = Self::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            let mut take = |name: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match a.as_str() {
                "--scale" => out.scale = take("--scale").parse().expect("--scale: integer"),
                "--seed" => out.seed = take("--seed").parse().expect("--seed: integer"),
                "--part" => out.part = Some(take("--part")),
                "--csv" => out.csv = true,
                "--quick" => out.quick = true,
                "--trace-out" => out.trace_out = Some(take("--trace-out")),
                "--sample-ms" => {
                    out.sample_ms = Some(take("--sample-ms").parse().expect("--sample-ms: integer"))
                }
                "--shards" => {
                    out.shards = Some(take("--shards").parse().expect("--shards: integer"))
                }
                "--threads" => {
                    out.threads = take("--threads")
                        .split(',')
                        .map(|s| {
                            s.trim()
                                .parse()
                                .expect("--threads: comma-separated integers")
                        })
                        .collect()
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --scale N  --threads 1,2,4  --seed N  --part a  --csv  --quick  \
                         --trace-out PATH  --sample-ms N  --shards N"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other} (try --help)"),
            }
        }
        out
    }

    /// Whether figure part `p` was requested (all parts when unset).
    pub fn wants_part(&self, p: &str) -> bool {
        self.part.as_deref().map(|sel| sel == p).unwrap_or(true)
    }
}

/// Prints a table row: a label column followed by right-aligned numbers.
pub fn print_row(csv: bool, label: &str, cells: &[String]) {
    if csv {
        println!("{label},{}", cells.join(","));
    } else {
        print!("{label:<22}");
        for c in cells {
            print!(" {c:>12}");
        }
        println!();
    }
}

/// Formats a throughput in million ops/second.
pub fn fmt_mops(v: f64) -> String {
    format!("{v:.2}")
}

/// Uniform adapter over the sequential §4.1 contestants (paper Table 1).
///
/// `contains`/`scan` take `&mut self` so hint-carrying structures can
/// update their hints, exactly as the paper's engine threads hints through
/// operations.
pub trait BenchSet {
    /// Inserts a 2D point.
    fn insert(&mut self, t: [u64; 2]) -> bool;
    /// Membership test.
    fn contains(&mut self, t: &[u64; 2]) -> bool;
    /// Iterates every element, returning the count (full-range scan).
    fn scan_count(&mut self) -> usize;
    /// The label used in the paper's figures.
    fn label(&self) -> &'static str;
}

/// The §4.1 contestant list (Figure 3 legends).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Contestant {
    /// Google's B-tree analog.
    GoogleBTree,
    /// Sequential specialized B-tree with hints.
    SeqBTree,
    /// Sequential specialized B-tree without hints.
    SeqBTreeNoHints,
    /// Concurrent specialized B-tree with hints.
    BTree,
    /// Concurrent specialized B-tree without hints.
    BTreeNoHints,
    /// Red-black tree (`std::set` analog).
    StlRbtset,
    /// Open-addressing hash set (`std::unordered_set` analog).
    StlHashset,
    /// Sharded concurrent hash set (TBB analog).
    TbbHashset,
}

impl Contestant {
    /// All contestants in the paper's legend order.
    pub const ALL: [Contestant; 8] = [
        Contestant::GoogleBTree,
        Contestant::SeqBTree,
        Contestant::SeqBTreeNoHints,
        Contestant::BTree,
        Contestant::BTreeNoHints,
        Contestant::StlRbtset,
        Contestant::StlHashset,
        Contestant::TbbHashset,
    ];

    /// Creates an empty instance.
    pub fn create(&self) -> Box<dyn BenchSet> {
        match self {
            Contestant::GoogleBTree => Box::new(GoogleBTreeBench(GBTreeSet::new())),
            Contestant::SeqBTree => Box::new(SeqBTreeBench {
                tree: SeqBTreeSet::new(),
                hints: Some(SeqHints::new()),
            }),
            Contestant::SeqBTreeNoHints => Box::new(SeqBTreeBench {
                tree: SeqBTreeSet::new(),
                hints: None,
            }),
            Contestant::BTree => {
                let tree = BTreeSet::new();
                let hints = tree.create_hints();
                Box::new(SpecBTreeBench {
                    tree,
                    hints: Some(hints),
                })
            }
            Contestant::BTreeNoHints => Box::new(SpecBTreeBench {
                tree: BTreeSet::new(),
                hints: None,
            }),
            Contestant::StlRbtset => Box::new(RbBench(RbTreeSet::new())),
            Contestant::StlHashset => Box::new(HashBench(OaHashSet::new())),
            Contestant::TbbHashset => Box::new(TbbBench(SplitOrderedSet::new())),
        }
    }

    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Contestant::GoogleBTree => "google btree",
            Contestant::SeqBTree => "seq btree",
            Contestant::SeqBTreeNoHints => "seq btree (n/h)",
            Contestant::BTree => "btree",
            Contestant::BTreeNoHints => "btree (n/h)",
            Contestant::StlRbtset => "STL rbtset",
            Contestant::StlHashset => "STL hashset",
            Contestant::TbbHashset => "TBB hashset",
        }
    }
}

struct GoogleBTreeBench(GBTreeSet<[u64; 2]>);

impl BenchSet for GoogleBTreeBench {
    fn insert(&mut self, t: [u64; 2]) -> bool {
        self.0.insert(t)
    }
    fn contains(&mut self, t: &[u64; 2]) -> bool {
        self.0.contains(t)
    }
    fn scan_count(&mut self) -> usize {
        self.0.iter().count()
    }
    fn label(&self) -> &'static str {
        "google btree"
    }
}

struct SeqBTreeBench {
    tree: SeqBTreeSet<2>,
    hints: Option<SeqHints>,
}

impl BenchSet for SeqBTreeBench {
    fn insert(&mut self, t: [u64; 2]) -> bool {
        match &mut self.hints {
            Some(h) => self.tree.insert_hinted(t, h),
            None => self.tree.insert(t),
        }
    }
    fn contains(&mut self, t: &[u64; 2]) -> bool {
        match &mut self.hints {
            Some(h) => self.tree.contains_hinted(t, h),
            None => self.tree.contains(t),
        }
    }
    fn scan_count(&mut self) -> usize {
        self.tree.iter().count()
    }
    fn label(&self) -> &'static str {
        if self.hints.is_some() {
            "seq btree"
        } else {
            "seq btree (n/h)"
        }
    }
}

struct SpecBTreeBench {
    tree: BTreeSet<2>,
    hints: Option<BTreeHints<2>>,
}

impl BenchSet for SpecBTreeBench {
    fn insert(&mut self, t: [u64; 2]) -> bool {
        match &mut self.hints {
            Some(h) => self.tree.insert_hinted(t, h),
            None => self.tree.insert(t),
        }
    }
    fn contains(&mut self, t: &[u64; 2]) -> bool {
        match &mut self.hints {
            Some(h) => self.tree.contains_hinted(t, h),
            None => self.tree.contains(t),
        }
    }
    fn scan_count(&mut self) -> usize {
        self.tree.iter().count()
    }
    fn label(&self) -> &'static str {
        if self.hints.is_some() {
            "btree"
        } else {
            "btree (n/h)"
        }
    }
}

struct RbBench(RbTreeSet<[u64; 2]>);

impl BenchSet for RbBench {
    fn insert(&mut self, t: [u64; 2]) -> bool {
        self.0.insert(t)
    }
    fn contains(&mut self, t: &[u64; 2]) -> bool {
        self.0.contains(t)
    }
    fn scan_count(&mut self) -> usize {
        self.0.iter().count()
    }
    fn label(&self) -> &'static str {
        "STL rbtset"
    }
}

struct HashBench(OaHashSet<[u64; 2]>);

impl BenchSet for HashBench {
    fn insert(&mut self, t: [u64; 2]) -> bool {
        self.0.insert(t)
    }
    fn contains(&mut self, t: &[u64; 2]) -> bool {
        self.0.contains(t)
    }
    fn scan_count(&mut self) -> usize {
        self.0.iter().count()
    }
    fn label(&self) -> &'static str {
        "STL hashset"
    }
}

struct TbbBench(SplitOrderedSet<[u64; 2]>);

impl BenchSet for TbbBench {
    fn insert(&mut self, t: [u64; 2]) -> bool {
        self.0.insert(t)
    }
    fn contains(&mut self, t: &[u64; 2]) -> bool {
        self.0.contains(t)
    }
    fn scan_count(&mut self) -> usize {
        let mut n = 0usize;
        self.0.for_each(|_| n += 1);
        n
    }
    fn label(&self) -> &'static str {
        "TBB hashset"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_contestant_round_trips() {
        for c in Contestant::ALL {
            let mut s = c.create();
            assert_eq!(s.label(), c.label());
            for i in 0..500u64 {
                assert!(s.insert([i / 10, i % 10 + (i / 10) * 100]), "{}", c.label());
            }
            assert_eq!(s.scan_count(), 500, "{}", c.label());
            assert!(s.contains(&[0, 0]), "{}", c.label());
            assert!(!s.contains(&[999, 999]), "{}", c.label());
            assert!(!s.insert([0, 0]), "duplicate accepted by {}", c.label());
        }
    }

    #[test]
    fn wants_part_filters() {
        let mut a = Args::default();
        assert!(a.wants_part("a"));
        a.part = Some("b".into());
        assert!(!a.wants_part("a"));
        assert!(a.wants_part("b"));
    }
}
