//! Per-bin observability session: span-trace export + counter sampler.
//!
//! Every harness binary brackets its work in an [`ObsSession`]:
//!
//! ```no_run
//! # let args = bench_suite::Args::default();
//! let mut obs = bench_suite::obs::ObsSession::start("fig3", &args);
//! // ... run the benchmark ...
//! obs.finish();
//! ```
//!
//! `finish` drains the telemetry span buffers and writes a Chrome
//! trace-event file when `--trace-out PATH` was given, and stops the
//! background [`Sampler`] (started by `--sample-ms N`) and writes its
//! time series to `SAMPLES_<name>.json`. Both are silent no-ops when the
//! `telemetry` feature is off — in particular, **no trace file is
//! created** on a feature-off build (CI's trace-smoke job asserts this),
//! so a missing file is always distinguishable from an empty timeline.
//!
//! # Sampler overhead policy
//!
//! The sampler thread only merges the telemetry counter shards (relaxed
//! atomic loads, no locks shared with workers) once per period; it never
//! walks trees — tree censuses ([`specbtree::TreeStats`]) are quiescent-
//! phase operations, so they enter the series only through explicit
//! [`ObsSession::annotate`] calls at phase boundaries. Periods below
//! 10 ms are clamped up to keep the sampler invisible in bench numbers.

use crate::json::JsonWriter;
use crate::Args;
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Shortest allowed sampling period; `--sample-ms` below this is clamped.
pub const MIN_SAMPLE_MS: u64 = 10;

/// One periodic counter snapshot in a [`Sampler`]'s series.
struct Sample {
    t_ms: u64,
    counters: Vec<(&'static str, u64)>,
}

/// A phase-boundary annotation attached via [`ObsSession::annotate`]:
/// a label plus an already-serialized JSON payload (tree census, storage
/// report, ...), timestamped on the sampler timeline.
struct Annotation {
    t_ms: u64,
    label: String,
    json: String,
}

struct Series {
    samples: Vec<Sample>,
    annotations: Vec<Annotation>,
}

/// A background thread snapshotting the telemetry counters at a fixed
/// period. Created by [`ObsSession::start`] when `--sample-ms` is given
/// (and telemetry is on); stopped and serialized by
/// [`ObsSession::finish`].
pub struct Sampler {
    stop: Sender<()>,
    handle: JoinHandle<()>,
    series: Arc<Mutex<Series>>,
    epoch: Instant,
    period_ms: u64,
}

impl Sampler {
    fn start(period_ms: u64) -> Sampler {
        let period_ms = period_ms.max(MIN_SAMPLE_MS);
        let series = Arc::new(Mutex::new(Series {
            samples: Vec::new(),
            annotations: Vec::new(),
        }));
        let epoch = Instant::now();
        let (stop, rx) = mpsc::channel::<()>();
        let worker_series = Arc::clone(&series);
        let handle = std::thread::spawn(move || {
            let period = std::time::Duration::from_millis(period_ms);
            loop {
                match rx.recv_timeout(period) {
                    Err(RecvTimeoutError::Timeout) => {
                        let snap = telemetry::snapshot();
                        let mut s = worker_series.lock().unwrap();
                        s.samples.push(Sample {
                            t_ms: epoch.elapsed().as_millis() as u64,
                            counters: snap.counters,
                        });
                    }
                    // Stop requested or the session was dropped.
                    Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
                }
            }
        });
        Sampler {
            stop,
            handle,
            series,
            epoch,
            period_ms,
        }
    }

    fn finish(self, name: &str) {
        let _ = self.stop.send(());
        let _ = self.handle.join();
        let series = self.series.lock().unwrap();
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("bench", name);
        w.field_u64("sample_ms", self.period_ms);
        w.begin_array_field("samples");
        for s in &series.samples {
            let mut item = String::new();
            item.push_str(&format!("{{\"t_ms\": {}, \"counters\": {{", s.t_ms));
            let mut first = true;
            for (cname, v) in &s.counters {
                if *v == 0 {
                    continue; // keep the series compact: zero rows carry no signal
                }
                if !first {
                    item.push_str(", ");
                }
                first = false;
                item.push_str(&format!("\"{cname}\": {v}"));
            }
            item.push_str("}}");
            w.item_raw(&item);
        }
        w.end_array();
        w.begin_array_field("annotations");
        for a in &series.annotations {
            w.item_raw(&format!(
                "{{\"t_ms\": {}, \"label\": \"{}\", \"data\": {}}}",
                a.t_ms,
                crate::json::escape(&a.label),
                a.json
            ));
        }
        w.end_array();
        w.end_object();
        let path = format!("SAMPLES_{name}.json");
        std::fs::write(&path, w.finish()).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!(
            "wrote {path} ({} samples, {} annotations)",
            series.samples.len(),
            series.annotations.len()
        );
    }
}

/// One binary run's observability scope: trace file + sampler, driven by
/// the shared `--trace-out` / `--sample-ms` flags (see module docs).
pub struct ObsSession {
    name: String,
    trace_out: Option<String>,
    sampler: Option<Sampler>,
}

impl ObsSession {
    /// Opens the session. The sampler starts immediately when
    /// `--sample-ms` was given; with telemetry off both facilities are
    /// disabled (with a notice when flags asked for them).
    pub fn start(name: &str, args: &Args) -> ObsSession {
        if !telemetry::ENABLED && (args.trace_out.is_some() || args.sample_ms.is_some()) {
            eprintln!(
                "note: --trace-out/--sample-ms need the `telemetry` feature; \
                 rebuild with --features telemetry (no files will be written)"
            );
        }
        let sampler = match args.sample_ms {
            Some(ms) if telemetry::ENABLED => Some(Sampler::start(ms)),
            _ => None,
        };
        ObsSession {
            name: name.to_string(),
            trace_out: args.trace_out.clone().filter(|_| telemetry::ENABLED),
            sampler,
        }
    }

    /// Attaches a phase-boundary annotation (an already-serialized JSON
    /// value, e.g. `TreeStats::to_json` or `StorageReport::to_json`) to
    /// the sampler series. No-op when no sampler is running — quiescent
    /// tree censuses never ride on the sampler thread itself.
    pub fn annotate(&self, label: &str, json: &str) {
        if let Some(s) = &self.sampler {
            s.series.lock().unwrap().annotations.push(Annotation {
                t_ms: s.epoch.elapsed().as_millis() as u64,
                label: label.to_string(),
                json: json.to_string(),
            });
        }
    }

    /// Stops the sampler (writing `SAMPLES_<name>.json`), drains every
    /// thread's spans, and writes the Chrome trace to `--trace-out`.
    pub fn finish(self) {
        if let Some(sampler) = self.sampler {
            sampler.finish(&self.name);
        }
        if let Some(path) = &self.trace_out {
            let records = telemetry::spans::drain_all();
            let dropped = telemetry::spans::dropped();
            telemetry::trace_export::write_chrome_trace(std::path::Path::new(path), &records)
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
            print!("wrote {path} ({} spans", records.len());
            if dropped > 0 {
                print!(", {dropped} dropped by ring wrap — trace is a truncated window");
            }
            println!(")");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args_with(trace_out: Option<&str>, sample_ms: Option<u64>) -> Args {
        Args {
            trace_out: trace_out.map(str::to_string),
            sample_ms,
            ..Args::default()
        }
    }

    #[test]
    fn session_without_flags_is_inert() {
        let obs = ObsSession::start("unit", &Args::default());
        obs.annotate("phase", "{}");
        obs.finish(); // must not write any file or panic
    }

    #[test]
    fn feature_off_session_never_writes_a_trace() {
        if telemetry::ENABLED {
            return; // live-path behavior is covered by the CI trace-smoke job
        }
        let dir = std::env::temp_dir().join("bench_suite_obs_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("should_not_exist.json");
        let _ = std::fs::remove_file(&path);
        let obs = ObsSession::start("unit", &args_with(path.to_str(), Some(5)));
        obs.finish();
        assert!(
            !path.exists(),
            "feature-off build must not create trace files"
        );
    }

    #[test]
    fn sampler_collects_and_serializes_when_enabled() {
        if !telemetry::ENABLED {
            return;
        }
        let sampler = Sampler::start(MIN_SAMPLE_MS);
        std::thread::sleep(std::time::Duration::from_millis(3 * MIN_SAMPLE_MS + 5));
        telemetry::count(telemetry::Counter::BtreeLeafSplits);
        let n = {
            // Let at least one sample land, then snapshot the count.
            std::thread::sleep(std::time::Duration::from_millis(2 * MIN_SAMPLE_MS));
            sampler.series.lock().unwrap().samples.len()
        };
        assert!(n >= 1, "sampler produced no samples");
        sampler.finish("obs_unit_test");
        let path = "SAMPLES_obs_unit_test.json";
        let doc = std::fs::read_to_string(path).expect("series written");
        assert!(doc.contains("\"bench\": \"obs_unit_test\""));
        assert!(doc.contains("\"samples\": ["));
        let _ = std::fs::remove_file(path);
    }
}
