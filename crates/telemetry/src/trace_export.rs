//! # trace_export — Chrome trace-event rendering for span records
//!
//! Converts drained [`SpanRecord`]s into the
//! Chrome trace-event JSON format, loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`. The export is a pure
//! function of the records, so it compiles in both feature modes (a
//! disabled build just never has records to export).
//!
//! # Format
//!
//! The document is `{"traceEvents": [...], "displayTimeUnit": "ns"}`.
//! Every span becomes a `B` (begin) and matching `E` (end) duration event
//! with microsecond `ts` values; `pid` is constant 1, `tid` is the
//! span's dense thread id, and the span operand rides in
//! `args.arg`. Within one `tid` the events are emitted stack-ordered
//! (every `B` has its `E`, properly nested, with non-decreasing `ts`) —
//! `ci/validate_trace.py` checks exactly these properties.
//!
//! RAII spans on one thread nest by construction (an inner span is
//! dropped before the guard that encloses it), so the per-thread records
//! form a forest of intervals; the writer walks that forest pre-order
//! with an explicit stack to serialize it.

use crate::spans::SpanRecord;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Escapes a label for a JSON string literal. Labels are `&'static str`
/// identifiers, but the writer still guards the JSON-breaking characters.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Microsecond timestamp with nanosecond fraction, as Chrome expects.
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn push_event(out: &mut String, ph: char, label: &str, ts_ns: u64, tid: u64, arg: Option<u64>) {
    if !out.ends_with('[') {
        out.push(',');
    }
    let _ = write!(
        out,
        "\n    {{\"name\": \"{}\", \"ph\": \"{}\", \"ts\": {}, \"pid\": 1, \"tid\": {}",
        escape(label),
        ph,
        ts_us(ts_ns),
        tid
    );
    if let Some(a) = arg {
        let _ = write!(out, ", \"args\": {{\"arg\": {a}}}");
    }
    out.push('}');
}

/// Renders `records` as a Chrome trace-event JSON document.
///
/// Records are grouped per thread and sorted pre-order (begin ascending,
/// end descending), then serialized as properly nested `B`/`E` pairs via
/// an explicit span stack. Records from different threads never nest
/// into each other — trace viewers give each `tid` its own track.
pub fn chrome_trace_json(records: &[SpanRecord]) -> String {
    let mut sorted: Vec<&SpanRecord> = records.iter().collect();
    // Per-thread pre-order: outer spans (earlier begin, later end) first.
    sorted.sort_by(|a, b| {
        (a.tid, a.begin_ns, std::cmp::Reverse(a.end_ns)).cmp(&(
            b.tid,
            b.begin_ns,
            std::cmp::Reverse(b.end_ns),
        ))
    });

    let mut out = String::from("{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [");
    let mut stack: Vec<&SpanRecord> = Vec::new();
    let mut cur_tid = u64::MAX;
    let flush = |out: &mut String, stack: &mut Vec<&SpanRecord>| {
        while let Some(open) = stack.pop() {
            push_event(out, 'E', open.label, open.end_ns, open.tid, None);
        }
    };
    for rec in sorted {
        if rec.tid != cur_tid {
            flush(&mut out, &mut stack);
            cur_tid = rec.tid;
        }
        // Close every open span that does not contain this one. Same-thread
        // RAII spans either nest or are disjoint, so "not containing" means
        // the open span ended at or before this begin.
        while let Some(open) = stack.last() {
            if rec.begin_ns >= open.begin_ns && rec.end_ns <= open.end_ns {
                break;
            }
            push_event(&mut out, 'E', open.label, open.end_ns, open.tid, None);
            stack.pop();
        }
        push_event(
            &mut out,
            'B',
            rec.label,
            rec.begin_ns,
            rec.tid,
            Some(rec.arg),
        );
        stack.push(rec);
    }
    flush(&mut out, &mut stack);
    out.push_str("\n  ]\n}\n");
    out
}

/// Writes `records` to `path` as Chrome trace-event JSON (see
/// [`chrome_trace_json`]).
pub fn write_chrome_trace(path: &Path, records: &[SpanRecord]) -> io::Result<()> {
    std::fs::write(path, chrome_trace_json(records))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(label: &'static str, begin: u64, end: u64, tid: u64) -> SpanRecord {
        SpanRecord {
            label,
            arg: 7,
            begin_ns: begin,
            end_ns: end,
            tid,
        }
    }

    /// Minimal checker mirroring ci/validate_trace.py: per-tid monotone
    /// timestamps and balanced, label-matched B/E nesting.
    fn check_nesting(doc: &str) -> usize {
        let mut stacks: std::collections::HashMap<u64, Vec<String>> = Default::default();
        let mut last_ts: std::collections::HashMap<u64, f64> = Default::default();
        let mut events = 0;
        for line in doc
            .lines()
            .filter(|l| l.trim_start().starts_with("{\"name\""))
        {
            let grab = |key: &str| {
                let at = line.find(&format!("\"{key}\": ")).unwrap() + key.len() + 4;
                line[at..]
                    .split([',', '}'])
                    .next()
                    .unwrap()
                    .trim()
                    .trim_matches('"')
                    .to_string()
            };
            let (name, ph) = (grab("name"), grab("ph"));
            let ts: f64 = grab("ts").parse().unwrap();
            let tid: u64 = grab("tid").parse().unwrap();
            let prev = last_ts.insert(tid, ts).unwrap_or(0.0);
            assert!(ts >= prev, "tid {tid} time went backwards: {prev} -> {ts}");
            let stack = stacks.entry(tid).or_default();
            match ph.as_str() {
                "B" => stack.push(name),
                "E" => assert_eq!(stack.pop().as_deref(), Some(name.as_str())),
                other => panic!("unexpected ph {other}"),
            }
            events += 1;
        }
        assert!(stacks.values().all(|s| s.is_empty()), "unclosed B events");
        events
    }

    #[test]
    fn empty_records_render_valid_document() {
        let doc = chrome_trace_json(&[]);
        assert!(doc.contains("\"traceEvents\": ["));
        assert_eq!(check_nesting(&doc), 0);
    }

    #[test]
    fn nested_and_sibling_spans_emit_balanced_pairs() {
        // Thread 1: outer [0, 100] containing [10, 20] and [20, 90],
        // which itself contains [30, 40]. Thread 2: one disjoint span.
        let records = vec![
            rec("inner.b", 20, 90, 1),
            rec("outer", 0, 100, 1),
            rec("inner.a", 10, 20, 1),
            rec("leaf", 30, 40, 1),
            rec("other", 5, 50, 2),
        ];
        let doc = chrome_trace_json(&records);
        assert_eq!(check_nesting(&doc), 10, "5 spans -> 5 B + 5 E");
        assert!(doc.contains("\"args\": {\"arg\": 7}"));
        // Pre-order: outer's B comes before inner.a's B.
        assert!(doc.find("outer").unwrap() < doc.find("inner.a").unwrap());
    }

    #[test]
    fn zero_length_and_identical_spans_stay_balanced() {
        let records = vec![
            rec("a", 50, 50, 3),
            rec("a", 50, 50, 3),
            rec("b", 50, 60, 3),
        ];
        let doc = chrome_trace_json(&records);
        assert_eq!(check_nesting(&doc), 6);
    }

    #[test]
    fn timestamps_are_microseconds_with_nanos_fraction() {
        assert_eq!(ts_us(0), "0.000");
        assert_eq!(ts_us(1_234), "1.234");
        assert_eq!(ts_us(1_000_007), "1000.007");
    }
}
