//! # telemetry — the workspace's shared measurement substrate
//!
//! The paper's performance story rests on events that are invisible from
//! the outside: optimistic-read validation failures, write-lock
//! escalations, Algorithm 1/2 restarts, node splits. This crate gives every
//! layer (`optlock`, `specbtree`, `datalog`) one place to count them —
//! without ever slowing the hot path down when observability is not asked
//! for.
//!
//! Three instruments:
//!
//! * **Counters** ([`count`]/[`add`]): named monotone event counts, sharded
//!   across cache-line-padded slots so concurrent increments from different
//!   threads do not contend. Each increment is a single `Relaxed`
//!   `fetch_add` on the thread's own shard.
//! * **Histograms** ([`record`], [`Timer`]): log2-bucketed value
//!   distributions (restart counts per operation, chunk scan latencies,
//!   stratum fixpoint times), same sharding.
//! * **Flight recorder** ([`flight`]): a fixed-size per-thread ring buffer
//!   of recent labelled events (protocol step, node id, cause). When an
//!   operation exceeds the [restart budget](restart_budget), the layer
//!   dumps the ring — the diagnostic analog of the chaos harness's
//!   schedule traces, but for production runs.
//! * **Spans** ([`span`]/[`spans`]): per-thread timeline records (begin/end
//!   nanoseconds, label, operand, thread id) drained by
//!   [`spans::drain_all`] and exported as a Chrome trace
//!   ([`trace_export::write_chrome_trace`]) — the *when/where* view the
//!   three counting instruments cannot give.
//!
//! # Zero cost when off
//!
//! Everything is gated on the `enabled` cargo feature (consumer crates
//! forward their own `telemetry` feature here). With the feature **off**
//! every probe is an empty `#[inline(always)]` function, [`Timer`] and
//! [`flight::Event`] are zero-sized, and no static storage exists — the
//! `no_op_path` test module asserts this, and CI builds both ways. With it
//! **on**, the cost of a probe is one thread-local read plus one relaxed
//! atomic add.
//!
//! # Reading the numbers
//!
//! [`snapshot`] merges all shards into a [`Snapshot`] that renders as an
//! aligned human-readable table ([`Snapshot::to_table`]) or a
//! machine-readable JSON report ([`Snapshot::to_json`]). [`reset`] zeroes
//! everything (between benchmark phases; quiescent callers only).
//!
//! ```
//! telemetry::count(telemetry::Counter::BtreeInsertRestarts);
//! telemetry::record(telemetry::Hist::EvalDeltaTuples, 37);
//! let snap = telemetry::snapshot();
//! // With the `enabled` feature the counter reads back ≥ 1; without it the
//! // snapshot is empty and reports itself disabled.
//! assert_eq!(snap.enabled, telemetry::ENABLED);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod spans;
pub mod trace_export;

pub use spans::{span, Span, SpanRecord};

use std::fmt::Write as _;

/// Whether the `enabled` feature was compiled in.
pub const ENABLED: bool = cfg!(feature = "enabled");

// ---------------------------------------------------------------------
// The taxonomy: every counter and histogram in the workspace, by layer.
// Keeping the full list here (rather than string-keyed registration at
// each site) makes snapshots allocation-free on the hot path and gives
// DESIGN.md a single table to document.
// ---------------------------------------------------------------------

/// Every event counter in the workspace. Names are `layer.event`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// `optlock`: read-lease validations performed (`validate`/`end_read`).
    LockReadValidations,
    /// `optlock`: validations that failed (a writer intervened).
    LockValidationFailures,
    /// `optlock`: lease-to-write upgrade attempts.
    LockUpgradeAttempts,
    /// `optlock`: upgrade attempts that lost the race.
    LockUpgradeFailures,
    /// `optlock`: successful direct write acquisitions (`try_start_write`).
    LockWriteAcquisitions,
    /// `optlock`: backoff spin-loop rounds while waiting on a writer.
    LockSpinIterations,
    /// `specbtree`: Algorithm 1 insert restarts (all causes).
    BtreeInsertRestarts,
    /// `specbtree`: restarts caused by a failed validation during descent.
    BtreeRestartDescend,
    /// `specbtree`: restarts caused by a failed leaf write upgrade.
    BtreeRestartLeafUpgrade,
    /// `specbtree`: restarts after splitting a full leaf (the insert
    /// re-descends into the halved tree).
    BtreeRestartSplitRetry,
    /// `specbtree`: lookup/bound descents restarted by concurrent writes.
    BtreeLookupRestarts,
    /// `specbtree`: leaf node splits (Algorithm 2).
    BtreeLeafSplits,
    /// `specbtree`: inner node splits (Algorithm 2, propagated).
    BtreeInnerSplits,
    /// `specbtree`: root splits growing the tree by one level.
    BtreeRootGrowth,
    /// `specbtree`: `insert_all` merges served by the empty-target bulk
    /// load fast path.
    BtreeMergeBulkLoad,
    /// `specbtree`: `insert_all` merges that fell back to hinted per-tuple
    /// insertion.
    BtreeMergePerTuple,
    /// `datalog`: semi-naive fixpoint iterations across all strata.
    EvalIterations,
    /// `telemetry`: flight-recorder dumps emitted (restart budget
    /// exceeded).
    FlightDumps,
    /// `specbtree`: arena slabs allocated (`fastpath` node arena).
    ArenaSlabAllocs,
    /// `specbtree`: bytes handed out for nodes by the arena (aligned
    /// sizes, accumulated via `add`).
    ArenaBytesUsed,
    /// `specbtree`: node allocations served by the bump fast path (room in
    /// the current slab).
    ArenaAllocFast,
    /// `specbtree`: node allocations that had to open or reuse a slab.
    ArenaAllocSlow,
    /// `specbtree`: parallel `insert_all` merges served by the subtree
    /// splice fast path (a prebuilt run attached under one write-locked
    /// ancestor instead of per-tuple insertion).
    BtreeMergeSplice,
    /// `specbtree`: source chunks processed by parallel `insert_all`
    /// workers (target-separator-aligned partitions).
    BtreeMergeChunks,
    /// `specbtree`: arena bytes abandoned by merge fast paths that built a
    /// subtree and then lost a publication race or failed validation
    /// (`fastpath` only — the boxed path frees the subtree instead).
    /// Accumulated via `add`; the bounded, by-design leak DESIGN.md's
    /// memory-layout section describes.
    ArenaAbandonedBytes,
    /// `specbtree`: interior descent steps ranked through the latch-free
    /// fenced path (quiescence probe succeeded, contiguous SIMD rank).
    BtreeFencedRank,
    /// `specbtree`: interior descent steps that saw a concurrent writer at
    /// the fence probe and fell back to per-slot atomic search.
    BtreeFencedFallback,
    /// `specbtree`: gap redistributions into a left sibling performed
    /// instead of an eager leaf split (`gapped` layout).
    BtreeRedistributions,
    /// `specbtree`: successful `remove` operations (tuple was present).
    BtreeRemoves,
    /// `specbtree`: remove operations restarted (failed validation or
    /// contended spine/sibling locks).
    BtreeRemoveRestarts,
    /// `specbtree`: empty leaves spliced out of their parent after a
    /// remove drained them.
    BtreeLeafUnlinks,
    /// `datalog`: per-shard delta merges performed by the sharded storage
    /// backend (one per shard per merge pass; each runs against its own
    /// tree with no cross-shard locks).
    EvalShardMerges,
    /// `datalog`: outer-scan chunks a worker claimed outside its home
    /// shard (work stealing crossed a shard boundary).
    EvalShardSteals,
    /// `datalog`: secondary index trees built (one per column permutation
    /// registered on a relation, backfill included).
    EvalIndexBuilds,
}

impl Counter {
    /// Number of counters (array dimension).
    pub const COUNT: usize = 34;

    /// All counters, in declaration order.
    pub const ALL: [Counter; Self::COUNT] = [
        Counter::LockReadValidations,
        Counter::LockValidationFailures,
        Counter::LockUpgradeAttempts,
        Counter::LockUpgradeFailures,
        Counter::LockWriteAcquisitions,
        Counter::LockSpinIterations,
        Counter::BtreeInsertRestarts,
        Counter::BtreeRestartDescend,
        Counter::BtreeRestartLeafUpgrade,
        Counter::BtreeRestartSplitRetry,
        Counter::BtreeLookupRestarts,
        Counter::BtreeLeafSplits,
        Counter::BtreeInnerSplits,
        Counter::BtreeRootGrowth,
        Counter::BtreeMergeBulkLoad,
        Counter::BtreeMergePerTuple,
        Counter::EvalIterations,
        Counter::FlightDumps,
        Counter::ArenaSlabAllocs,
        Counter::ArenaBytesUsed,
        Counter::ArenaAllocFast,
        Counter::ArenaAllocSlow,
        Counter::BtreeMergeSplice,
        Counter::BtreeMergeChunks,
        Counter::ArenaAbandonedBytes,
        Counter::BtreeFencedRank,
        Counter::BtreeFencedFallback,
        Counter::BtreeRedistributions,
        Counter::BtreeRemoves,
        Counter::BtreeRemoveRestarts,
        Counter::BtreeLeafUnlinks,
        Counter::EvalShardMerges,
        Counter::EvalShardSteals,
        Counter::EvalIndexBuilds,
    ];

    /// The dotted `layer.event` name used in reports.
    pub const fn name(self) -> &'static str {
        match self {
            Counter::LockReadValidations => "optlock.read_validations",
            Counter::LockValidationFailures => "optlock.validation_failures",
            Counter::LockUpgradeAttempts => "optlock.upgrade_attempts",
            Counter::LockUpgradeFailures => "optlock.upgrade_failures",
            Counter::LockWriteAcquisitions => "optlock.write_acquisitions",
            Counter::LockSpinIterations => "optlock.spin_iterations",
            Counter::BtreeInsertRestarts => "specbtree.insert_restarts",
            Counter::BtreeRestartDescend => "specbtree.restart_descend",
            Counter::BtreeRestartLeafUpgrade => "specbtree.restart_leaf_upgrade",
            Counter::BtreeRestartSplitRetry => "specbtree.restart_split_retry",
            Counter::BtreeLookupRestarts => "specbtree.lookup_restarts",
            Counter::BtreeLeafSplits => "specbtree.leaf_splits",
            Counter::BtreeInnerSplits => "specbtree.inner_splits",
            Counter::BtreeRootGrowth => "specbtree.root_growth",
            Counter::BtreeMergeBulkLoad => "specbtree.merge_bulk_load",
            Counter::BtreeMergePerTuple => "specbtree.merge_per_tuple",
            Counter::EvalIterations => "datalog.iterations",
            Counter::FlightDumps => "telemetry.flight_dumps",
            Counter::ArenaSlabAllocs => "specbtree.arena_slabs",
            Counter::ArenaBytesUsed => "specbtree.arena_bytes",
            Counter::ArenaAllocFast => "specbtree.arena_alloc_fast",
            Counter::ArenaAllocSlow => "specbtree.arena_alloc_slow",
            Counter::BtreeMergeSplice => "specbtree.merge_splice",
            Counter::BtreeMergeChunks => "specbtree.merge_chunks",
            Counter::ArenaAbandonedBytes => "specbtree.arena_abandoned_bytes",
            Counter::BtreeFencedRank => "specbtree.fenced_rank",
            Counter::BtreeFencedFallback => "specbtree.fenced_fallback",
            Counter::BtreeRedistributions => "specbtree.redistributions",
            Counter::BtreeRemoves => "specbtree.removes",
            Counter::BtreeRemoveRestarts => "specbtree.remove_restarts",
            Counter::BtreeLeafUnlinks => "specbtree.leaf_unlinks",
            Counter::EvalShardMerges => "datalog.shard_merges",
            Counter::EvalShardSteals => "datalog.shard_steals",
            Counter::EvalIndexBuilds => "datalog.index_builds",
        }
    }
}

/// Every log2-bucket histogram in the workspace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// `specbtree`: restarts of one insert operation (0 = clean first try).
    BtreeInsertRestartsPerOp,
    /// `datalog`: delta-relation sizes per fixpoint iteration (tuples).
    EvalDeltaTuples,
    /// `datalog`: wall time from claiming an outer-scan chunk to finishing
    /// it (nanoseconds).
    EvalChunkNanos,
    /// `datalog`: wall time of one stratum's full fixpoint (nanoseconds).
    EvalStratumNanos,
    /// `specbtree`: key-slot probes per intra-node search (`fastpath`
    /// branch-free search: the prefix length for the linear/SIMD scan,
    /// comparator invocations for the branchless binary path).
    BtreeSearchProbes,
    /// `datalog`: wall time of one merge phase — folding every `new`
    /// relation of a stratum into its full relation (nanoseconds).
    EvalMergeNanos,
    /// `datalog`: per-shard tuple counts sampled after each sharded merge
    /// pass — the spread of this histogram *is* the shard balance (a
    /// single hot bucket means one shard soaks up the relation).
    EvalShardBalance,
    /// `datalog`: wall time of one shard's delta merge within a sharded
    /// merge pass (nanoseconds).
    EvalShardMergeNanos,
    /// `datalog`: wall time spent keeping secondary index trees in sync
    /// with their primary during bulk `merge_from`/`retract_from` passes
    /// and index backfill builds (nanoseconds).
    EvalIndexMaintainNanos,
}

impl Hist {
    /// Number of histograms (array dimension).
    pub const COUNT: usize = 9;

    /// All histograms, in declaration order.
    pub const ALL: [Hist; Self::COUNT] = [
        Hist::BtreeInsertRestartsPerOp,
        Hist::EvalDeltaTuples,
        Hist::EvalChunkNanos,
        Hist::EvalStratumNanos,
        Hist::BtreeSearchProbes,
        Hist::EvalMergeNanos,
        Hist::EvalShardBalance,
        Hist::EvalShardMergeNanos,
        Hist::EvalIndexMaintainNanos,
    ];

    /// The dotted `layer.metric` name used in reports.
    pub const fn name(self) -> &'static str {
        match self {
            Hist::BtreeInsertRestartsPerOp => "specbtree.insert_restarts_per_op",
            Hist::EvalDeltaTuples => "datalog.delta_tuples",
            Hist::EvalChunkNanos => "datalog.chunk_nanos",
            Hist::EvalStratumNanos => "datalog.stratum_nanos",
            Hist::BtreeSearchProbes => "specbtree.search_probe",
            Hist::EvalMergeNanos => "datalog.merge_nanos",
            Hist::EvalShardBalance => "datalog.shard_balance",
            Hist::EvalShardMergeNanos => "datalog.shard_merge_nanos",
            Hist::EvalIndexMaintainNanos => "datalog.index_maintain_nanos",
        }
    }
}

/// Log2 bucket count: bucket 0 holds the value 0, bucket `b > 0` holds
/// values in `[2^(b-1), 2^b)`; `u64::MAX` lands in bucket 64.
pub const HIST_BUCKETS: usize = 65;

/// The bucket index `value` falls into.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive lower bound of histogram bucket `b`.
#[inline]
pub fn bucket_lo(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

// ---------------------------------------------------------------------
// Live implementation (feature `enabled`)
// ---------------------------------------------------------------------

#[cfg(feature = "enabled")]
mod imp {
    use super::{Counter, Hist, HIST_BUCKETS};
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};

    /// Number of independent shards counters are spread over. Threads hash
    /// onto shards round-robin; 32 keeps two threads off the same cache
    /// line up to moderately large worker counts.
    const SHARDS: usize = 32;

    /// One shard's worth of every counter, padded so two shards never
    /// share a cache line.
    #[repr(align(128))]
    struct CounterShard([AtomicU64; Counter::COUNT]);

    #[repr(align(128))]
    struct HistShard {
        buckets: [[AtomicU64; HIST_BUCKETS]; Hist::COUNT],
        sum: [AtomicU64; Hist::COUNT],
        max: [AtomicU64; Hist::COUNT],
    }

    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO_ROW: [AtomicU64; HIST_BUCKETS] = [ZERO; HIST_BUCKETS];

    static COUNTERS: [CounterShard; SHARDS] =
        [const { CounterShard([ZERO; Counter::COUNT]) }; SHARDS];
    static HISTS: [HistShard; SHARDS] = [const {
        HistShard {
            buckets: [ZERO_ROW; Hist::COUNT],
            sum: [ZERO; Hist::COUNT],
            max: [ZERO; Hist::COUNT],
        }
    }; SHARDS];

    static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

    thread_local! {
        static MY_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }

    #[inline]
    fn shard() -> usize {
        MY_SHARD.with(|s| {
            let v = s.get();
            if v != usize::MAX {
                v
            } else {
                let v = NEXT_SHARD.fetch_add(1, Relaxed) % SHARDS;
                s.set(v);
                v
            }
        })
    }

    #[inline]
    pub fn add(c: Counter, n: u64) {
        COUNTERS[shard()].0[c as usize].fetch_add(n, Relaxed);
    }

    #[inline]
    pub fn record(h: Hist, value: u64) {
        let s = &HISTS[shard()];
        s.buckets[h as usize][super::bucket_of(value)].fetch_add(1, Relaxed);
        s.sum[h as usize].fetch_add(value, Relaxed);
        s.max[h as usize].fetch_max(value, Relaxed);
    }

    pub fn counter_value(c: Counter) -> u64 {
        COUNTERS.iter().map(|s| s.0[c as usize].load(Relaxed)).sum()
    }

    pub fn hist_merge(h: Hist) -> ([u64; HIST_BUCKETS], u64, u64) {
        let mut buckets = [0u64; HIST_BUCKETS];
        let (mut sum, mut max) = (0u64, 0u64);
        for s in &HISTS {
            for (b, src) in buckets.iter_mut().zip(&s.buckets[h as usize]) {
                *b += src.load(Relaxed);
            }
            sum += s.sum[h as usize].load(Relaxed);
            max = max.max(s.max[h as usize].load(Relaxed));
        }
        (buckets, sum, max)
    }

    pub fn reset() {
        for s in &COUNTERS {
            for c in &s.0 {
                c.store(0, Relaxed);
            }
        }
        for s in &HISTS {
            for h in &s.buckets {
                for b in h {
                    b.store(0, Relaxed);
                }
            }
            for v in s.sum.iter().chain(s.max.iter()) {
                v.store(0, Relaxed);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Public probe API (no-ops without the feature)
// ---------------------------------------------------------------------

/// Increments `c` by one.
#[inline(always)]
pub fn count(c: Counter) {
    add(c, 1);
}

/// Increments `c` by `n`.
#[cfg(feature = "enabled")]
#[inline]
pub fn add(c: Counter, n: u64) {
    imp::add(c, n);
}

/// Increments `c` by `n` (no-op: telemetry disabled).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn add(_c: Counter, _n: u64) {}

/// Records `value` into histogram `h`.
#[cfg(feature = "enabled")]
#[inline]
pub fn record(h: Hist, value: u64) {
    imp::record(h, value);
}

/// Records `value` into histogram `h` (no-op: telemetry disabled).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn record(_h: Hist, _value: u64) {}

/// Resets every counter and histogram to zero. Callers must be quiescent
/// (no concurrent probes) for the zeros to be meaningful.
pub fn reset() {
    #[cfg(feature = "enabled")]
    imp::reset();
    flight::clear();
}

/// A started wall-clock measurement; [`observe`](Timer::observe) records
/// the elapsed nanoseconds into a histogram. Zero-sized (and clock-free)
/// when telemetry is disabled.
#[derive(Debug)]
pub struct Timer(#[cfg(feature = "enabled")] std::time::Instant);

/// Starts a [`Timer`]. Reads no clock when telemetry is disabled.
#[inline(always)]
pub fn start_timer() -> Timer {
    Timer(
        #[cfg(feature = "enabled")]
        std::time::Instant::now(),
    )
}

impl Timer {
    /// Nanoseconds since the timer started (0 when disabled).
    #[inline(always)]
    pub fn elapsed_nanos(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.0.elapsed().as_nanos().min(u64::MAX as u128) as u64
        }
        #[cfg(not(feature = "enabled"))]
        0
    }

    /// Records the elapsed nanoseconds into `h`.
    #[inline(always)]
    pub fn observe(self, h: Hist) {
        record(h, self.elapsed_nanos());
    }
}

// ---------------------------------------------------------------------
// Restart budget
// ---------------------------------------------------------------------

/// Default restart budget: an operation restarting this many times in a
/// row is considered pathological and triggers a flight-recorder dump.
pub const DEFAULT_RESTART_BUDGET: u64 = 64;

/// Resolves a raw `TELEMETRY_RESTART_BUDGET` environment value to a
/// budget: a missing variable or one that does not parse as an unsigned
/// integer (after trimming whitespace) falls back to
/// [`DEFAULT_RESTART_BUDGET`] — never a panic, because the env var is
/// user input read on a hot-path fallback.
pub fn parse_restart_budget(raw: Option<&str>) -> u64 {
    raw.and_then(|s| s.trim().parse().ok())
        .unwrap_or(DEFAULT_RESTART_BUDGET)
}

#[cfg(feature = "enabled")]
mod budget {
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
    use std::sync::OnceLock;

    // 0 is a valid budget ("dump on the first restart"), so the unset
    // state is encoded as u64::MAX and resolved lazily from the env.
    static BUDGET: AtomicU64 = AtomicU64::new(u64::MAX);
    static ENV_DEFAULT: OnceLock<u64> = OnceLock::new();

    pub fn get() -> u64 {
        let v = BUDGET.load(Relaxed);
        if v != u64::MAX {
            return v;
        }
        *ENV_DEFAULT.get_or_init(|| {
            super::parse_restart_budget(std::env::var("TELEMETRY_RESTART_BUDGET").ok().as_deref())
        })
    }

    pub fn set(v: u64) {
        BUDGET.store(v, Relaxed);
    }
}

/// The restart budget: operations restarting more often than this dump the
/// flight recorder. Defaults to [`DEFAULT_RESTART_BUDGET`], overridable via
/// the `TELEMETRY_RESTART_BUDGET` environment variable or
/// [`set_restart_budget`]. Effectively infinite when telemetry is disabled.
#[inline(always)]
pub fn restart_budget() -> u64 {
    #[cfg(feature = "enabled")]
    {
        budget::get()
    }
    #[cfg(not(feature = "enabled"))]
    u64::MAX
}

/// Overrides the restart budget (`u64::MAX` restores the env/default
/// resolution). No-op when telemetry is disabled.
pub fn set_restart_budget(_budget: u64) {
    #[cfg(feature = "enabled")]
    budget::set(_budget);
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

/// The per-thread flight recorder: a fixed-size ring buffer of recent
/// labelled events, dumped when an operation exceeds the restart budget.
pub mod flight {
    /// Ring capacity per thread (events kept before overwriting).
    pub const CAPACITY: usize = 256;

    /// One recorded event. Zero-sized storage when telemetry is disabled.
    #[derive(Clone, Copy, Debug)]
    pub struct Event {
        /// The protocol step or decision point (`"btree::insert::restart"`).
        pub label: &'static str,
        /// Primary operand — by convention a node id (pointer address).
        pub a: u64,
        /// Secondary operand — by convention a cause code or count.
        pub b: u64,
        /// Monotone per-thread sequence number.
        pub seq: u64,
    }

    #[cfg(feature = "enabled")]
    mod ring {
        use super::{Event, CAPACITY};
        use std::cell::RefCell;
        use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

        struct Ring {
            events: Vec<Event>,
            next: usize,
            seq: u64,
        }

        thread_local! {
            static RING: RefCell<Ring> = RefCell::new(Ring {
                events: Vec::with_capacity(CAPACITY),
                next: 0,
                seq: 0,
            });
        }

        /// Dumps remaining before stderr output is suppressed (floods of
        /// pathological operations should not bury the first traces).
        static DUMPS_LEFT: AtomicU64 = AtomicU64::new(8);

        pub fn event(label: &'static str, a: u64, b: u64) {
            RING.with(|r| {
                let mut r = r.borrow_mut();
                let seq = r.seq;
                r.seq += 1;
                let ev = Event { label, a, b, seq };
                if r.events.len() < CAPACITY {
                    r.events.push(ev);
                } else {
                    let slot = r.next;
                    r.events[slot] = ev;
                }
                r.next = (r.next + 1) % CAPACITY;
            });
        }

        pub fn clear() {
            RING.with(|r| {
                let mut r = r.borrow_mut();
                r.events.clear();
                r.next = 0;
                r.seq = 0;
            });
        }

        pub fn snapshot() -> Vec<Event> {
            RING.with(|r| {
                let r = r.borrow();
                let mut out = Vec::with_capacity(r.events.len());
                if r.events.len() == CAPACITY {
                    out.extend_from_slice(&r.events[r.next..]);
                    out.extend_from_slice(&r.events[..r.next]);
                } else {
                    out.extend_from_slice(&r.events);
                }
                out
            })
        }

        pub fn try_take_dump_slot() -> bool {
            DUMPS_LEFT
                .fetch_update(Relaxed, Relaxed, |n| n.checked_sub(1))
                .is_ok()
        }

        pub fn set_dump_limit(n: u64) {
            DUMPS_LEFT.store(n, Relaxed);
        }
    }

    /// Appends an event to the calling thread's ring.
    #[cfg(feature = "enabled")]
    #[inline]
    pub fn event(label: &'static str, a: u64, b: u64) {
        ring::event(label, a, b);
    }

    /// Appends an event to the calling thread's ring (no-op: disabled).
    #[cfg(not(feature = "enabled"))]
    #[inline(always)]
    pub fn event(_label: &'static str, _a: u64, _b: u64) {}

    /// The calling thread's recorded events, oldest first. Empty when
    /// telemetry is disabled.
    pub fn events() -> Vec<Event> {
        #[cfg(feature = "enabled")]
        {
            ring::snapshot()
        }
        #[cfg(not(feature = "enabled"))]
        Vec::new()
    }

    /// Clears the calling thread's ring.
    pub fn clear() {
        #[cfg(feature = "enabled")]
        ring::clear();
    }

    /// Formats the calling thread's ring, newest last, and writes it to
    /// stderr (rate-limited by [`set_dump_limit`]). Returns the rendered
    /// dump, or `None` when telemetry is disabled, the ring is empty, or
    /// the dump limit is exhausted. Increments
    /// [`Counter::FlightDumps`](crate::Counter::FlightDumps).
    pub fn dump(reason: &str) -> Option<String> {
        let evs = events();
        if evs.is_empty() {
            return None;
        }
        #[cfg(feature = "enabled")]
        if !ring::try_take_dump_slot() {
            return None;
        }
        crate::count(crate::Counter::FlightDumps);
        let mut out = format!(
            "=== telemetry flight recorder: {reason} (thread {:?}, {} events) ===\n",
            std::thread::current().id(),
            evs.len()
        );
        for ev in &evs {
            let _ = writeln!(
                out,
                "  #{:<8} {:<36} a={:#018x} b={}",
                ev.seq, ev.label, ev.a, ev.b
            );
        }
        eprint!("{out}");
        Some(out)
    }

    /// Sets how many dumps may still be written to stderr (default 8 per
    /// process). No-op when telemetry is disabled.
    pub fn set_dump_limit(_n: u64) {
        #[cfg(feature = "enabled")]
        ring::set_dump_limit(_n);
    }

    use std::fmt::Write as _;
}

// ---------------------------------------------------------------------
// Snapshot: merge + render
// ---------------------------------------------------------------------

/// Merged view of one histogram.
#[derive(Clone, Debug)]
pub struct HistSnapshot {
    /// Dotted metric name.
    pub name: &'static str,
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Non-empty buckets as `(bucket index, sample count)`; the bucket's
    /// value range is `[bucket_lo(i), 2 * bucket_lo(i))` (`{0}` for 0).
    pub buckets: Vec<(usize, u64)>,
}

impl HistSnapshot {
    /// Mean recorded value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A point-in-time merge of every shard of every counter and histogram.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Whether the `enabled` feature was compiled in (false ⇒ all zeros).
    pub enabled: bool,
    /// `(name, value)` for every counter, in taxonomy order.
    pub counters: Vec<(&'static str, u64)>,
    /// Merged histograms, in taxonomy order.
    pub hists: Vec<HistSnapshot>,
}

/// Merges all shards into a [`Snapshot`]. Cheap enough to call between
/// benchmark phases; values are `Relaxed` reads (exact once quiescent).
pub fn snapshot() -> Snapshot {
    #[cfg(feature = "enabled")]
    {
        let counters = Counter::ALL
            .iter()
            .map(|&c| (c.name(), imp::counter_value(c)))
            .collect();
        let hists = Hist::ALL
            .iter()
            .map(|&h| {
                let (buckets, sum, max) = imp::hist_merge(h);
                HistSnapshot {
                    name: h.name(),
                    count: buckets.iter().sum(),
                    sum,
                    max,
                    buckets: buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, &n)| n > 0)
                        .map(|(i, &n)| (i, n))
                        .collect(),
                }
            })
            .collect();
        Snapshot {
            enabled: true,
            counters,
            hists,
        }
    }
    #[cfg(not(feature = "enabled"))]
    Snapshot {
        enabled: false,
        counters: Vec::new(),
        hists: Vec::new(),
    }
}

impl Snapshot {
    /// The value of the counter named `name` (0 when absent/disabled).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// The merged histogram named `name`, if present.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|h| h.name == name)
    }

    /// The `n` largest non-zero counters, descending — "what restarted or
    /// contended the most".
    pub fn top(&self, n: usize) -> Vec<(&'static str, u64)> {
        let mut v: Vec<_> = self
            .counters
            .iter()
            .filter(|(_, val)| *val > 0)
            .copied()
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v.truncate(n);
        v
    }

    /// Renders an aligned human-readable table (zero rows omitted).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        if !self.enabled {
            out.push_str("telemetry disabled (build with --features telemetry)\n");
            return out;
        }
        out.push_str("counter                                   value\n");
        for (name, v) in &self.counters {
            if *v > 0 {
                let _ = writeln!(out, "{name:<40} {v:>10}");
            }
        }
        for h in &self.hists {
            if h.count == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<40} n={} mean={:.1} max={}",
                h.name,
                h.count,
                h.mean(),
                h.max
            );
            for &(b, n) in &h.buckets {
                let _ = writeln!(out, "  [{:>20} ..] {n:>10}", bucket_lo(b));
            }
        }
        out
    }

    /// Renders the machine-readable JSON report: `{"enabled": bool,
    /// "counters": {name: value, ...}, "histograms": {name: {"count": ..,
    /// "sum": .., "max": .., "buckets": [[lo, n], ...]}, ...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"enabled\": {},", self.enabled);
        out.push_str("  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i + 1 < self.counters.len() { "," } else { "" };
            let _ = write!(out, "\n    \"{name}\": {v}{sep}");
        }
        out.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"histograms\": {");
        for (i, h) in self.hists.iter().enumerate() {
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|&(b, n)| format!("[{}, {n}]", bucket_lo(b)))
                .collect();
            let sep = if i + 1 < self.hists.len() { "," } else { "" };
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"buckets\": [{}]}}{sep}",
                h.name,
                h.count,
                h.sum,
                h.max,
                buckets.join(", ")
            );
        }
        out.push_str(if self.hists.is_empty() {
            "}\n"
        } else {
            "\n  }\n"
        });
        out.push_str("}\n");
        out
    }
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

#[cfg(test)]
mod taxonomy_tests {
    use super::*;

    #[test]
    fn counter_all_matches_count_and_names_are_unique() {
        assert_eq!(Counter::ALL.len(), Counter::COUNT);
        let mut names: Vec<_> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.extend(Hist::ALL.iter().map(|h| h.name()));
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate metric name");
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "ALL order must match discriminants");
        }
        for (i, h) in Hist::ALL.iter().enumerate() {
            assert_eq!(*h as usize, i);
        }
    }

    #[test]
    fn restart_budget_env_parsing_never_panics() {
        // Garbage env values fall back to the default instead of
        // panicking; the helper is pure, so this pins the behavior in
        // both feature modes without touching the process environment.
        assert_eq!(parse_restart_budget(None), DEFAULT_RESTART_BUDGET);
        for garbage in [
            "",
            "  ",
            "abc",
            "-3",
            "1.5",
            "0x10",
            "9999999999999999999999",
        ] {
            assert_eq!(
                parse_restart_budget(Some(garbage)),
                DEFAULT_RESTART_BUDGET,
                "{garbage:?}"
            );
        }
        assert_eq!(parse_restart_budget(Some("0")), 0);
        assert_eq!(parse_restart_budget(Some(" 128\n")), 128);
    }

    #[test]
    fn bucket_math() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert!(bucket_of(u64::MAX) < HIST_BUCKETS);
        assert_eq!(bucket_lo(0), 0);
        assert_eq!(bucket_lo(1), 1);
        assert_eq!(bucket_lo(4), 8);
        for v in [0u64, 1, 2, 5, 1023, 1024, u64::MAX] {
            let b = bucket_of(v);
            assert!(bucket_lo(b) <= v, "v={v} b={b}");
            if b < 64 {
                assert!(v < bucket_lo(b + 1), "v={v} b={b}");
            }
        }
    }
}

/// The zero-cost contract: with the feature off, handles are zero-sized
/// and snapshots are empty. (The CI `telemetry` job runs this module in a
/// default build; the symmetric `live_path` module runs under
/// `--features enabled`.)
#[cfg(all(test, not(feature = "enabled")))]
mod no_op_path {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // constness is the point
    fn disabled_reports_itself() {
        assert!(!ENABLED);
    }

    #[test]
    fn handles_are_zero_sized() {
        // The whole probe surface must carry no data when disabled: these
        // sizes are what the optimizer folds the call sites away to.
        assert_eq!(std::mem::size_of::<Timer>(), 0);
        assert_eq!(std::mem::size_of_val(&start_timer()), 0);
        assert_eq!(std::mem::size_of::<Span>(), 0);
        assert_eq!(std::mem::size_of_val(&span("x", 0)), 0);
    }

    #[test]
    fn spans_are_inert() {
        {
            let _guard = span("eval.stratum", 3);
        }
        drop(span("eval.chunk", 1));
        assert!(spans::drain_all().is_empty());
        assert_eq!(spans::dropped(), 0);
        // The exporter still works as a pure function of (no) records.
        assert!(trace_export::chrome_trace_json(&[]).contains("traceEvents"));
    }

    #[test]
    fn probes_are_inert() {
        count(Counter::BtreeInsertRestarts);
        add(Counter::LockSpinIterations, 1000);
        record(Hist::EvalDeltaTuples, 42);
        start_timer().observe(Hist::EvalChunkNanos);
        flight::event("label", 1, 2);
        let snap = snapshot();
        assert!(!snap.enabled);
        assert!(snap.counters.is_empty());
        assert!(snap.hists.is_empty());
        assert_eq!(snap.counter("specbtree.insert_restarts"), 0);
        assert!(flight::events().is_empty());
        assert!(flight::dump("test").is_none());
        assert_eq!(restart_budget(), u64::MAX);
        let json = snap.to_json();
        assert!(json.contains("\"enabled\": false"), "{json}");
        assert!(snap.to_table().contains("disabled"));
    }
}

#[cfg(all(test, feature = "enabled"))]
mod live_path {
    use super::*;

    // The statics are process-global and tests run concurrently, so these
    // tests only assert monotone/nonzero properties, never exact totals —
    // except via deltas on counters no other test touches.

    #[test]
    fn counters_accumulate_across_threads() {
        let before = snapshot().counter("optlock.write_acquisitions");
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        count(Counter::LockWriteAcquisitions);
                    }
                });
            }
        });
        let after = snapshot().counter("optlock.write_acquisitions");
        assert_eq!(after - before, 4000);
    }

    #[test]
    fn histogram_records_buckets_sum_max() {
        for v in [0u64, 1, 1, 7, 1000] {
            record(Hist::EvalStratumNanos, v);
        }
        let snap = snapshot();
        let h = snap.hist("datalog.stratum_nanos").unwrap();
        assert!(h.count >= 5);
        assert!(h.sum >= 1009);
        assert!(h.max >= 1000);
        assert!(h.buckets.iter().any(|&(b, _)| bucket_lo(b) <= 1000));
    }

    #[test]
    fn timer_observes_elapsed() {
        let t = start_timer();
        std::hint::black_box(0);
        t.observe(Hist::EvalChunkNanos);
        let snap = snapshot();
        assert!(snap.hist("datalog.chunk_nanos").unwrap().count >= 1);
    }

    #[test]
    fn flight_ring_keeps_latest_events_in_order() {
        flight::clear();
        for i in 0..(flight::CAPACITY as u64 + 10) {
            flight::event("step", i, 0);
        }
        let evs = flight::events();
        assert_eq!(evs.len(), flight::CAPACITY);
        assert_eq!(evs[0].a, 10, "oldest surviving event");
        assert_eq!(evs.last().unwrap().a, flight::CAPACITY as u64 + 9);
        assert!(evs.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
        let dump = flight::dump("unit test").expect("dump available");
        assert!(dump.contains("step"));
        assert!(snapshot().counter("telemetry.flight_dumps") >= 1);
        flight::clear();
        assert!(flight::events().is_empty());
    }

    #[test]
    fn restart_budget_is_settable() {
        set_restart_budget(3);
        assert_eq!(restart_budget(), 3);
        set_restart_budget(u64::MAX); // restore env/default resolution
        assert_eq!(restart_budget(), DEFAULT_RESTART_BUDGET);
    }

    #[test]
    fn json_shape() {
        count(Counter::BtreeLeafSplits);
        record(Hist::BtreeInsertRestartsPerOp, 2);
        let json = snapshot().to_json();
        assert!(json.contains("\"enabled\": true"));
        assert!(json.contains("\"specbtree.leaf_splits\""));
        assert!(json.contains("\"specbtree.insert_restarts_per_op\""));
        assert!(json.contains("\"buckets\""));
    }

    #[test]
    fn snapshot_merges_while_other_threads_keep_bumping() {
        // Relaxed-read tolerance: concurrent snapshots taken mid-bump must
        // observe monotonically non-decreasing values for a counter that
        // only grows, and never panic or tear. (The bumping counter is
        // shared with other tests, so only monotonicity is asserted.)
        use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    while !stop.load(Relaxed) {
                        count(Counter::LockSpinIterations);
                        record(Hist::EvalDeltaTuples, 5);
                    }
                });
            }
            let mut last_counter = 0u64;
            let mut last_hist = 0u64;
            for _ in 0..200 {
                let snap = snapshot();
                let c = snap.counter("optlock.spin_iterations");
                assert!(
                    c >= last_counter,
                    "counter went backwards: {last_counter} -> {c}"
                );
                last_counter = c;
                let h = snap.hist("datalog.delta_tuples").unwrap();
                assert!(h.count >= last_hist, "hist count went backwards");
                last_hist = h.count;
            }
            stop.store(true, Relaxed);
        });
    }

    #[test]
    fn spans_record_across_threads_and_drain_once() {
        // Statics are process-global and tests run concurrently, so use
        // labels unique to this test and tolerate foreign spans in the
        // drained set. A single #[test] covers the whole span surface to
        // avoid two tests draining each other's records.
        assert!(std::mem::size_of::<Span>() > 0, "live spans carry data");
        std::thread::scope(|s| {
            for t in 0..2u64 {
                s.spawn(move || {
                    let _outer = span("test.span_outer", t);
                    for i in 0..3u64 {
                        let _inner = span("test.span_inner", i);
                        std::hint::black_box(i);
                    }
                });
            }
        });
        let drained = spans::drain_all();
        let mine: Vec<_> = drained
            .iter()
            .filter(|r| r.label.starts_with("test.span_"))
            .collect();
        assert!(mine.len() >= 8, "2 outer + 6 inner, got {}", mine.len());
        let tids: std::collections::HashSet<u64> = mine.iter().map(|r| r.tid).collect();
        assert!(tids.len() >= 2, "spans from two threads get distinct tids");
        for r in &mine {
            assert!(r.end_ns >= r.begin_ns);
        }
        // Sorted by begin time.
        assert!(drained.windows(2).all(|w| w[0].begin_ns <= w[1].begin_ns));
        // Inner spans nest inside their thread's outer span.
        for tid in &tids {
            let outer = mine
                .iter()
                .find(|r| r.tid == *tid && r.label == "test.span_outer")
                .expect("outer span present");
            for inner in mine
                .iter()
                .filter(|r| r.tid == *tid && r.label == "test.span_inner")
            {
                assert!(inner.begin_ns >= outer.begin_ns && inner.end_ns <= outer.end_ns);
            }
        }
        // The trace export round-trips the drained records.
        let owned: Vec<SpanRecord> = mine.iter().map(|r| **r).collect();
        let doc = trace_export::chrome_trace_json(&owned);
        assert!(doc.contains("test.span_outer") && doc.contains("test.span_inner"));
        // A drain is destructive: our labels are gone from the next one.
        assert!(spans::drain_all()
            .iter()
            .all(|r| !r.label.starts_with("test.span_")));
    }
}
