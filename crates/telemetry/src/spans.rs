//! # spans — the timeline tier of the telemetry substrate
//!
//! Counters say *how often* and histograms say *how much*; spans say
//! *when* and *on which thread*. A [`Span`] is an RAII handle created by
//! [`span`]: construction stamps a begin time, drop stamps the end time
//! and appends a [`SpanRecord`] to the calling thread's ring buffer.
//! [`drain_all`] collects every thread's records (including threads that
//! have since exited) for export as a Chrome trace
//! ([`crate::trace_export::write_chrome_trace`]).
//!
//! The tier obeys the same zero-cost contract as [`Timer`](crate::Timer):
//! with the `enabled` feature off, [`Span`] is a zero-sized type, [`span`]
//! reads no clock, drop does nothing, and no static storage exists — the
//! `no_op_path` test module asserts all of it.
//!
//! # Granularity policy
//!
//! Spans are *phase-grained*, never per-tuple: the finest sites in the
//! workspace are one scheduler chunk claim and one merge chunk
//! (microseconds to milliseconds). A span costs two `Instant` reads plus
//! one push under the thread's own (uncontended) buffer lock, which is
//! noise at that granularity but would not be at per-operation scale.
//!
//! # Ring buffering
//!
//! Each thread keeps at most [`CAPACITY`] records; beyond that the oldest
//! are overwritten and counted in [`dropped`], so a runaway fixpoint
//! cannot exhaust memory — the trace keeps the most recent window, and
//! the drop count makes the truncation visible instead of silent.

/// One completed span: a labelled `[begin, end)` wall-clock interval on
/// one thread. Times are nanoseconds since the process-wide span epoch
/// (the first span or drain of the process), so records from different
/// threads share one timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// The phase this span covers (`"eval.chunk"`, `"dred.overdelete"`,
    /// ...). Dotted `layer.phase`, same convention as counter names.
    pub label: &'static str,
    /// One operand of the span — by convention an index that identifies
    /// *which* stratum/iteration/plan/chunk this was.
    pub arg: u64,
    /// Begin time, nanoseconds since the span epoch.
    pub begin_ns: u64,
    /// End time, nanoseconds since the span epoch (`>= begin_ns`).
    pub end_ns: u64,
    /// Small dense thread id assigned on the thread's first span (not the
    /// OS id): stable within a process, compact in trace viewers.
    pub tid: u64,
}

/// Per-thread ring capacity: records kept before the oldest are
/// overwritten (see [`dropped`]).
pub const CAPACITY: usize = 1 << 14;

#[cfg(feature = "enabled")]
mod imp {
    use super::{SpanRecord, CAPACITY};
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
    use std::sync::{Arc, Mutex, OnceLock};
    use std::time::Instant;

    /// One thread's span storage. The mutex is effectively uncontended:
    /// only the owning thread pushes, and [`super::drain_all`] takes it
    /// briefly when collecting.
    struct Buf {
        records: Vec<SpanRecord>,
        /// Overwrite cursor once `records` reached [`CAPACITY`].
        next: usize,
    }

    struct Shared {
        buf: Mutex<Buf>,
        tid: u64,
    }

    /// Every thread's buffer, registered on first use and kept after the
    /// thread exits so late drains still see its spans.
    static REGISTRY: Mutex<Vec<Arc<Shared>>> = Mutex::new(Vec::new());
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    static DROPPED: AtomicU64 = AtomicU64::new(0);
    static EPOCH: OnceLock<Instant> = OnceLock::new();

    thread_local! {
        static MY_BUF: RefCell<Option<Arc<Shared>>> = const { RefCell::new(None) };
    }

    pub fn now_ns() -> u64 {
        EPOCH
            .get_or_init(Instant::now)
            .elapsed()
            .as_nanos()
            .min(u64::MAX as u128) as u64
    }

    fn with_buf(f: impl FnOnce(&Shared)) {
        MY_BUF.with(|slot| {
            let mut slot = slot.borrow_mut();
            let shared = slot.get_or_insert_with(|| {
                let shared = Arc::new(Shared {
                    buf: Mutex::new(Buf {
                        records: Vec::new(),
                        next: 0,
                    }),
                    tid: NEXT_TID.fetch_add(1, Relaxed),
                });
                REGISTRY.lock().unwrap().push(Arc::clone(&shared));
                shared
            });
            f(shared);
        });
    }

    pub fn push(label: &'static str, arg: u64, begin_ns: u64, end_ns: u64) {
        with_buf(|shared| {
            let rec = SpanRecord {
                label,
                arg,
                begin_ns,
                end_ns,
                tid: shared.tid,
            };
            let mut buf = shared.buf.lock().unwrap();
            if buf.records.len() < CAPACITY {
                buf.records.push(rec);
            } else {
                let slot = buf.next;
                buf.records[slot] = rec;
                buf.next = (buf.next + 1) % CAPACITY;
                DROPPED.fetch_add(1, Relaxed);
            }
        });
    }

    pub fn drain_all() -> Vec<SpanRecord> {
        let registry = REGISTRY.lock().unwrap();
        let mut out = Vec::new();
        for shared in registry.iter() {
            let mut buf = shared.buf.lock().unwrap();
            out.append(&mut buf.records);
            buf.next = 0;
        }
        drop(registry);
        out.sort_by_key(|r| (r.begin_ns, r.tid));
        out
    }

    pub fn dropped() -> u64 {
        DROPPED.load(Relaxed)
    }
}

/// An in-flight span: created by [`span`], recorded on drop. Zero-sized
/// (and clock-free, storage-free) when telemetry is disabled.
#[derive(Debug)]
#[must_use = "a span records the interval until it is dropped; binding it to _ ends it immediately"]
pub struct Span {
    #[cfg(feature = "enabled")]
    label: &'static str,
    #[cfg(feature = "enabled")]
    arg: u64,
    #[cfg(feature = "enabled")]
    begin_ns: u64,
}

/// Begins a span labelled `label` with operand `arg`; the returned handle
/// records the interval when dropped. Bind it to a named `_guard`-style
/// local — binding to `_` drops immediately and records an empty span.
#[inline(always)]
pub fn span(label: &'static str, arg: u64) -> Span {
    #[cfg(not(feature = "enabled"))]
    let _ = (label, arg);
    Span {
        #[cfg(feature = "enabled")]
        label,
        #[cfg(feature = "enabled")]
        arg,
        #[cfg(feature = "enabled")]
        begin_ns: imp::now_ns(),
    }
}

#[cfg(feature = "enabled")]
impl Drop for Span {
    fn drop(&mut self) {
        imp::push(self.label, self.arg, self.begin_ns, imp::now_ns());
    }
}

/// Collects (and removes) every thread's recorded spans, sorted by begin
/// time. Includes spans of threads that have already exited. Returns an
/// empty vector when telemetry is disabled.
///
/// Draining is destructive by design: a bench binary drains once at the
/// end of a phase and writes the trace; the next phase starts clean.
pub fn drain_all() -> Vec<SpanRecord> {
    #[cfg(feature = "enabled")]
    {
        imp::drain_all()
    }
    #[cfg(not(feature = "enabled"))]
    Vec::new()
}

/// How many spans have been overwritten by ring wrap-around since process
/// start (0 when disabled). Nonzero means [`drain_all`] returned a
/// truncated window — report it next to the trace instead of pretending
/// the trace is complete.
pub fn dropped() -> u64 {
    #[cfg(feature = "enabled")]
    {
        imp::dropped()
    }
    #[cfg(not(feature = "enabled"))]
    0
}
