#!/usr/bin/env python3
"""Shape-check a BENCH_retract.json (bench-suite/src/bin/retract.rs).

Usage: validate_retract.py [path] [--quick|--full]

--quick expects the CI smoke run: shape-identical JSON over small graphs,
where the incremental-vs-scratch ratio is meaningless (fixed costs dwarf
the tiny closures), so only structure and accounting are checked. --full
additionally enforces the acceptance criterion: the headline chain
scenario's retraction must complete within `target_ratio` of from-scratch
recomputation at the top thread count.
"""
from benchlib import assert_ratio, load_bench, parse_cli

path, mode = parse_cli("BENCH_retract.json")
doc = load_bench(path, "retract", mode)
assert 0 < doc["target_ratio"] <= 1, doc["target_ratio"]

names = [sc["name"] for sc in doc["scenarios"]]
assert "chain_tail_1pct" in names, names
assert "grid_rederive" in names, names

for sc in doc["scenarios"]:
    assert sc["edges"] > 0 and sc["retracted_edges"] > 0, sc["name"]
    assert sc["retracted_edges"] < sc["edges"], sc["name"]
    # Every withdrawn EDB fact must actually have been present.
    assert sc["retracted_inputs"] == sc["retracted_edges"], sc["name"]
    # Overdeletion is a superset of what stays deleted; rederivation gives
    # back at most what overdeletion took.
    assert sc["overdeleted"] >= sc["rederived"], sc["name"]
    assert sc["net_removed"] > 0, sc["name"]
    assert sc["top_threads"] >= 1, sc["name"]
    assert len(sc["results"]) > 0, sc["name"]
    for r in sc["results"]:
        assert r["threads"] >= 1, sc["name"]
        assert r["retract_seconds"] > 0 and r["scratch_run_seconds"] > 0, sc["name"]
        assert_ratio(
            r["ratio"],
            r["retract_seconds"],
            r["scratch_run_seconds"],
            (sc["name"], r["threads"]),
        )
        # Phase breakdown must be non-negative and within the total (the
        # total also covers plan compilation and bookkeeping outside the
        # four phases, so the sum is a lower bound on it).
        phases = (
            r["overdelete_seconds"]
            + r["delete_seconds"]
            + r["rederive_seconds"]
            + r["fallback_seconds"]
        )
        for f in ("overdelete", "delete", "rederive", "fallback"):
            assert r[f + "_seconds"] >= 0, (sc["name"], f)
        assert phases <= r["retract_seconds"] * 1.05, (sc["name"], r["threads"])
    top = [r for r in sc["results"] if r["threads"] == sc["top_threads"]]
    assert len(top) == 1, (sc["name"], sc["top_threads"])
    assert abs(sc["ratio_at_top"] - top[0]["ratio"]) < 1e-3, sc["name"]
    assert sc["pass"] is (sc["ratio_at_top"] <= doc["target_ratio"]), sc["name"]

chain = next(sc for sc in doc["scenarios"] if sc["name"] == "chain_tail_1pct")
assert doc["headline_pass"] is chain["pass"]
if mode == "--full":
    # Acceptance: 1% tail retraction of the ≥1M-tuple chain closure within
    # target_ratio of recomputation at the top thread count.
    assert chain["edges"] >= 1000, chain["edges"]
    assert chain["pass"], (
        f"headline ratio {chain['ratio_at_top']} exceeds target "
        f"{doc['target_ratio']}"
    )

print(
    f"{path} OK: {len(doc['scenarios'])} scenarios, headline ratio "
    f"{chain['ratio_at_top']} (target {doc['target_ratio']}, "
    f"pass={chain['pass']})"
)
