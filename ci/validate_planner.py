#!/usr/bin/env python3
"""Shape-check a BENCH_planner.json (bench-suite/src/bin/planner.rs).

Usage: validate_planner.py [path] [--quick|--full]

--quick expects the CI smoke run: shape-identical JSON over small
relations, where millisecond-scale runs make the speedup and parity
figures noisy, so only structure and index accounting are checked.
--full additionally enforces the acceptance criterion: on both
scenarios the planner must beat the adversarial hand order by at least
`target_speedup` and stay within `parity_floor` of the best hand order
at the top thread count.
"""
from benchlib import assert_ratio, load_bench, parse_cli

path, mode = parse_cli("BENCH_planner.json")
doc = load_bench(path, "planner", mode)
assert doc["target_speedup"] >= 1, doc["target_speedup"]
assert 0 < doc["parity_floor"] <= 1, doc["parity_floor"]

names = [sc["name"] for sc in doc["scenarios"]]
assert "chain_join" in names, names
assert "reverse_bind" in names, names

for sc in doc["scenarios"]:
    assert sc["input_tuples"] > 0 and sc["output_tuples"] > 0, sc["name"]
    assert sc["top_threads"] >= 1, sc["name"]
    assert 0 <= sc["index_hit_ratio"] <= 1, sc["name"]
    if sc["name"] == "reverse_bind":
        # The reverse binding through fact's second column is unservable
        # by the primary order: the planner must have derived an index.
        assert sc["index_builds"] >= 1, sc
    if sc["name"] == "chain_join":
        # Pure ordering problem — the minimal cover must not over-build.
        assert sc["index_builds"] == 0, sc
    assert len(sc["results"]) > 0, sc["name"]
    for r in sc["results"]:
        assert r["threads"] >= 1, sc["name"]
        for f in ("adversarial_seconds", "planner_seconds", "best_hand_seconds"):
            assert r[f] > 0, (sc["name"], f)
        assert_ratio(
            r["speedup_vs_adversarial"],
            r["adversarial_seconds"],
            r["planner_seconds"],
            (sc["name"], r["threads"], "speedup"),
        )
        assert_ratio(
            r["parity_vs_best_hand"],
            r["best_hand_seconds"],
            r["planner_seconds"],
            (sc["name"], r["threads"], "parity"),
        )
        assert r["inner_scans_full"] >= 0 and r["inner_scans_indexed"] >= 0
    top = [r for r in sc["results"] if r["threads"] == sc["top_threads"]]
    assert len(top) == 1, (sc["name"], sc["top_threads"])
    assert abs(sc["speedup_vs_adversarial"] - top[0]["speedup_vs_adversarial"]) < 1e-3
    assert abs(sc["parity_vs_best_hand"] - top[0]["parity_vs_best_hand"]) < 1e-3
    expect_pass = (
        sc["speedup_vs_adversarial"] >= doc["target_speedup"]
        and sc["parity_vs_best_hand"] >= doc["parity_floor"]
    )
    assert sc["pass"] is expect_pass, sc["name"]

assert doc["headline_pass"] is all(sc["pass"] for sc in doc["scenarios"])
if mode == "--full":
    # Acceptance: ≥2x over the adversarial order AND parity with the best
    # hand order, on every scenario, at full scale.
    for sc in doc["scenarios"]:
        assert sc["input_tuples"] >= 100_000, (sc["name"], sc["input_tuples"])
        assert sc["pass"], (
            f"{sc['name']}: speedup {sc['speedup_vs_adversarial']} "
            f"(target {doc['target_speedup']}), parity "
            f"{sc['parity_vs_best_hand']} (floor {doc['parity_floor']})"
        )

summary = ", ".join(
    f"{sc['name']} {sc['speedup_vs_adversarial']}x/{sc['parity_vs_best_hand']}"
    for sc in doc["scenarios"]
)
print(f"{path} OK: {summary} (headline_pass={doc['headline_pass']})")
