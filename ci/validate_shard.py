#!/usr/bin/env python3
"""Shape-check a BENCH_shard.json (bench-suite/src/bin/shard.rs).

Usage: validate_shard.py [path] [--quick|--full]

--quick expects the CI smoke run: shape-identical JSON over a tiny chain,
where wall-clock comparisons are meaningless (per-iteration fixed costs
dwarf the 2k-tuple closure), so structure, shard balance, and the
zero-cross-shard-lock merge invariant are checked. --full additionally
enforces the contention acceptance criteria: the sharded backend's
optimistic-lock failure counters at the top thread count must be strictly
below the single tree's, and the sharded merge microbenchmark must report
zero validation/upgrade failures. Wall-clock speedup is asserted only on
multi-core machines (the repo's CI container is a single-core VM where
every 8-thread row is timeslicing — see EXPERIMENTS.md).
"""
import os

from benchlib import load_bench, parse_cli

path, mode = parse_cli("BENCH_shard.json")
doc = load_bench(path, "shard", mode)

nshards = doc["shards"]
assert nshards >= 1, nshards
top = doc["top_threads"]
assert top >= 1, top
telemetry_on = doc["telemetry_enabled"]

assert len(doc["workloads"]) == 1, [w["name"] for w in doc["workloads"]]
wl = doc["workloads"][0]
assert wl["name"] == "chain_tc", wl["name"]
assert wl["edges"] > 0 and wl["closure"] > 0, (wl["edges"], wl["closure"])
# chain(n) closes to C(n+1, 2) over n edges.
assert wl["closure"] == wl["edges"] * (wl["edges"] + 1) // 2, wl

# Per-shard census: one entry per shard, summing to the closure, with the
# hash map keeping the heaviest shard under 2x the mean (chain keys are
# dense, the golden-ratio mix should spread them; >90% skew would be a
# routing bug for this workload).
assert len(wl["shard_lens"]) == nshards, wl["shard_lens"]
assert sum(wl["shard_lens"]) == wl["closure"], wl["shard_lens"]
mean = wl["closure"] / nshards
assert max(wl["shard_lens"]) <= 2.0 * mean, wl["shard_lens"]
assert abs(wl["balance"] - max(wl["shard_lens"]) / mean) < 1e-3, wl["balance"]

backends = {r["backend"] for r in wl["results"]}
assert backends == {"btree", "btree (sharded)"}, backends


def result(backend, threads):
    (r,) = [
        r for r in wl["results"] if r["backend"] == backend and r["threads"] == threads
    ]
    return r


for r in wl["results"]:
    assert r["seconds"] > 0, r
    assert r["chunks_claimed"] > 0, r
    assert r["chunks_stolen"] <= r["chunks_claimed"], r
    if r["backend"] == "btree":
        # Steals are a sharded-scheduler notion: the single tree has one
        # chunk group, so nothing ever counts as stolen.
        assert r["chunks_stolen"] == 0, r

single_top = result("btree", top)
sharded_top = result("btree (sharded)", top)

if telemetry_on:
    # The zero-cross-shard-lock merge invariant: per-shard trees are
    # disjoint, so the shard-parallel merge never fails a read validation
    # or a lock upgrade — at any scale, quick included.
    micro = doc["merge_micro"]
    assert micro["tuples"] > 0 and micro["workers"] >= 1, micro
    sharded_micro = micro["sharded"]["counters"]
    assert sharded_micro["optlock.validation_failures"] == 0, sharded_micro
    assert sharded_micro["optlock.upgrade_failures"] == 0, sharded_micro
    assert micro["zero_cross_shard_locks"] is True, micro
    # Sharded evaluation reported its per-shard merges.
    assert sharded_top["counters"]["datalog.shard_merges"] > 0, sharded_top

if mode == "--full":
    assert wl["closure"] >= 1_000_000, wl["closure"]
    if telemetry_on:
        # Contention acceptance: at the top thread count the sharded
        # backend's optimistic-lock failures stay strictly below the
        # single tree's (which suffers real validation/upgrade failures
        # on its one contended root even under timeslicing).
        s, m = sharded_top["counters"], single_top["counters"]
        single_failures = (
            m["optlock.validation_failures"] + m["optlock.upgrade_failures"]
        )
        sharded_failures = (
            s["optlock.validation_failures"] + s["optlock.upgrade_failures"]
        )
        assert sharded_failures < single_failures, (sharded_failures, single_failures)
    # 1-thread parity: sharding must not tax the sequential case.
    bottom = min(r["threads"] for r in wl["results"])
    parity = result("btree", bottom)["seconds"] / result("btree (sharded)", bottom)[
        "seconds"
    ]
    assert parity >= 0.9, parity
    # Wall-clock speedup needs real cores; on the single-core CI VM every
    # multi-thread row is oversubscribed timeslicing (EXPERIMENTS.md).
    if (os.cpu_count() or 1) > 1:
        speedup = single_top["seconds"] / sharded_top["seconds"]
        assert speedup >= 1.3, speedup

print(
    f"{path} OK: {nshards} shards, closure {wl['closure']}, balance "
    f"{wl['balance']:.3f}, speedup {wl['speedup_at_top_threads']:.2f}x at "
    f"{top} threads, zero_cross_shard_locks="
    f"{doc['merge_micro']['zero_cross_shard_locks']}"
)
