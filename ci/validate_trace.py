#!/usr/bin/env python3
"""Shape-check a Chrome trace-event file written by `--trace-out`
(crates/telemetry/src/trace_export.rs).

Usage: validate_trace.py [path] [--min-labels N] [--min-tids N]

Checks the structural contract the exporter promises:

  * the document has `displayTimeUnit` and a `traceEvents` array;
  * every event is a well-formed B or E duration event (name, ph, pid,
    tid, numeric ts; B events carry `args.arg`);
  * per-thread timestamps are monotonically non-decreasing in file
    order (the exporter sorts per-tid pre-order);
  * B/E events balance per thread — every B has a matching E, names
    pair up LIFO, and no E closes an empty stack.

`--min-labels` / `--min-tids` enforce the diversity floor the CI
trace-smoke job needs (a trace from a parallel fixpoint should show at
least several distinct span labels across at least two worker threads).
"""

import json
import sys


def parse_cli(argv):
    path, min_labels, min_tids = "trace.json", 0, 0
    args = list(argv)
    pos = []
    while args:
        a = args.pop(0)
        if a == "--min-labels":
            min_labels = int(args.pop(0))
        elif a == "--min-tids":
            min_tids = int(args.pop(0))
        else:
            pos.append(a)
    assert len(pos) <= 1, f"unexpected arguments: {pos[1:]}"
    if pos:
        path = pos[0]
    return path, min_labels, min_tids


def validate(doc, min_labels, min_tids):
    assert doc["displayTimeUnit"] == "ns", doc.get("displayTimeUnit")
    events = doc["traceEvents"]
    assert isinstance(events, list), type(events)

    last_ts = {}  # tid -> last seen ts
    stacks = {}  # tid -> [name, ...] of open B events
    labels = set()
    for i, ev in enumerate(events):
        for field in ("name", "ph", "pid", "tid", "ts"):
            assert field in ev, (i, field, ev)
        assert ev["ph"] in ("B", "E"), (i, ev["ph"])
        ts = float(ev["ts"])
        tid = ev["tid"]
        assert ts >= last_ts.get(tid, 0.0), (i, "ts went backwards", tid, ts)
        last_ts[tid] = ts
        stack = stacks.setdefault(tid, [])
        if ev["ph"] == "B":
            assert "args" in ev and "arg" in ev["args"], (i, "B without args.arg")
            stack.append(ev["name"])
            labels.add(ev["name"])
        else:
            assert stack, (i, "E with no open B", tid, ev["name"])
            opened = stack.pop()
            assert opened == ev["name"], (i, "mismatched close", opened, ev["name"])
    for tid, stack in stacks.items():
        assert not stack, ("unclosed spans", tid, stack)

    assert len(labels) >= min_labels, (sorted(labels), f"need >= {min_labels}")
    assert len(last_ts) >= min_tids, (sorted(last_ts), f"need >= {min_tids}")
    return events, labels, last_ts


if __name__ == "__main__":
    path, min_labels, min_tids = parse_cli(sys.argv[1:])
    with open(path) as f:
        doc = json.load(f)
    events, labels, tids = validate(doc, min_labels, min_tids)
    print(
        f"{path} OK: {len(events)} events, {len(labels)} labels, "
        f"{len(tids)} threads"
    )
