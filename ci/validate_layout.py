#!/usr/bin/env python3
"""Shape-check a merged BENCH_layout.json (bench-suite/src/bin/layout.rs).

Usage: validate_layout.py [path] [--quick|--full]

--quick expects the CI smoke run (any n); --full expects the committed
1M-tuple report. Both modes require all three layout variants (gapped,
fastpath, boxed), per-op speedup rows including the full-scan case, and
internally consistent speedup arithmetic.
"""
from benchlib import assert_ratio, load_bench, parse_cli

path, mode = parse_cli("BENCH_layout.json")
doc = load_bench(path, "layout")
for side in ("gapped", "fastpath", "boxed"):
    sub = doc[side]
    assert sub["variant"] == side, (side, sub["variant"])
    assert sub["quick"] is (mode == "--quick"), (side, sub["quick"])
    if mode == "--full":
        assert sub["n"] >= 1_000_000, (side, sub["n"])
    assert sub["n"] > 0 and len(sub["results"]) > 0, side

ops = {(r["op"], r["threads"]) for r in doc["speedups"]}
for op in ("insert_sorted", "insert_random", "lookup_sorted", "lookup_random"):
    assert (op, 1) in ops, f"missing {op}/1 speedup row"
assert ("scan", 1) in ops, "missing scan speedup row"

for r in doc["speedups"]:
    for field in ("gapped_seconds", "fastpath_seconds", "boxed_seconds"):
        assert r[field] > 0, (r["op"], field)
    assert_ratio(r["speedup_vs_fastpath"], r["fastpath_seconds"], r["gapped_seconds"], r["op"])
    assert_ratio(r["speedup_vs_boxed"], r["boxed_seconds"], r["gapped_seconds"], r["op"])

for side in ("gapped", "fastpath"):
    assert doc[side]["arena"]["slabs"] > 0, f"{side} side did not use the arena"
assert doc["boxed"]["arena"]["slabs"] == 0, "boxed side unexpectedly used the arena"

print(f"{path} OK: {len(doc['speedups'])} speedup rows, n = {doc['gapped']['n']}")
