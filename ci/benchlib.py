"""Shared helpers for the ci/validate_*.py shape-checkers.

Every bench binary emits a JSON document with a `"bench"` name and (for
the mode-sensitive ones) a `"quick"` flag; the validators all start the
same way — parse argv, load the document, check the banner fields — and
share one numeric idiom: a relative-tolerance ratio check that survives
the 6-decimal rounding of stored seconds in sub-millisecond quick runs.
This module is that common prologue, so each validator only holds the
assertions specific to its bench.
"""

import json
import sys


def parse_cli(default_path, argv=None):
    """`validate_x.py [path] [--quick|--full]` -> (path, mode)."""
    argv = sys.argv[1:] if argv is None else argv
    path = argv[0] if len(argv) > 0 else default_path
    mode = argv[1] if len(argv) > 1 else "--quick"
    assert mode in ("--quick", "--full"), mode
    return path, mode


def load_bench(path, bench, mode=None):
    """Load a bench JSON document and check its banner fields.

    Asserts `doc["bench"] == bench`; when `mode` is given, also asserts
    the document's `quick` flag matches `--quick`/`--full`.
    """
    with open(path) as f:
        doc = json.load(f)
    assert doc["bench"] == bench, (path, doc.get("bench"))
    if mode is not None:
        assert doc["quick"] is (mode == "--quick"), (path, doc.get("quick"))
    return doc


def assert_ratio(stored, num, den, ctx):
    """Assert `stored ≈ num / den` with relative tolerance.

    Quick-mode runs have sub-millisecond sides, where the 6-decimal
    rounding of the stored seconds shifts the recomputed ratio past any
    absolute epsilon — so the tolerance scales with the ratio itself.
    """
    assert den > 0, (ctx, "zero denominator")
    recomputed = num / den
    assert abs(stored - recomputed) < 1e-3 + 0.01 * recomputed, (ctx, stored, recomputed)
