//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no registry access, so the workspace wires this
//! local shim in via a path dependency (see the root `Cargo.toml`). It
//! exposes the subset of the parking_lot API the workspace uses — `Mutex`
//! (guards returned infallibly), `Condvar` (`wait`/`wait_for` on a
//! `MutexGuard`), and `RwLock` including the `arc_lock` owned guards
//! (`RwLock::read_arc` / `RwLock::write_arc` and the
//! `lock_api::ArcRwLock*Guard` types) — implemented over `std::sync`
//! primitives. Contention behavior differs from the real crate (these are
//! correctness shims, not fairness-tuned locks), which is acceptable for
//! the baseline comparisons that use them.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Mutex + Condvar
// ---------------------------------------------------------------------------

/// A mutual-exclusion lock whose `lock` never returns a poison error.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
///
/// Wraps the std guard in an `Option` so [`Condvar::wait`] can temporarily
/// take ownership (std's condvar consumes and returns the guard).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Panics in the
    /// protected region do not poison the lock (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(g) }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// Result of [`Condvar::wait_for`]; mirrors parking_lot's type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`MutexGuard`] in place
/// (parking_lot-style `wait(&mut guard)` instead of std's by-value wait).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present outside wait");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
    }

    /// [`wait`](Self::wait) with a timeout.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present outside wait");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(p) => {
                let (g, res) = p.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

// ---------------------------------------------------------------------------
// RwLock (with arc_lock owned guards)
// ---------------------------------------------------------------------------

/// The raw reader–writer lock state behind [`RwLock`], named so call sites
/// can spell guard types as `lock_api::ArcRwLockWriteGuard<RawRwLock, T>`.
///
/// State: `-1` = one writer, `0` = free, `n > 0` = `n` readers.
pub struct RawRwLock {
    state: std::sync::Mutex<isize>,
    cond: std::sync::Condvar,
}

impl RawRwLock {
    fn lock_shared(&self) {
        let mut s = self.state.lock().expect("rwlock state");
        while *s < 0 {
            s = self.cond.wait(s).expect("rwlock state");
        }
        *s += 1;
    }

    fn unlock_shared(&self) {
        let mut s = self.state.lock().expect("rwlock state");
        *s -= 1;
        if *s == 0 {
            self.cond.notify_all();
        }
    }

    fn lock_exclusive(&self) {
        let mut s = self.state.lock().expect("rwlock state");
        while *s != 0 {
            s = self.cond.wait(s).expect("rwlock state");
        }
        *s = -1;
    }

    fn unlock_exclusive(&self) {
        let mut s = self.state.lock().expect("rwlock state");
        *s = 0;
        self.cond.notify_all();
    }
}

/// A reader–writer lock with infallible `read`/`write` and owned
/// (`Arc`-holding) guard constructors.
pub struct RwLock<T: ?Sized> {
    raw: RawRwLock,
    data: UnsafeCell<T>,
}

// SAFETY: the raw lock serializes access to `data` exactly like
// std::sync::RwLock; the bounds mirror std's.
unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
// SAFETY: readers share `&T` (needs Sync) and writers move `&mut T`
// across threads (needs Send), same as std::sync::RwLock.
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            raw: RawRwLock {
                state: std::sync::Mutex::new(0),
                cond: std::sync::Condvar::new(),
            },
            data: UnsafeCell::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.raw.lock_shared();
        RwLockReadGuard { lock: self }
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.raw.lock_exclusive();
        RwLockWriteGuard { lock: self }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Shared access through an owned guard keeping the `Arc` alive
    /// (parking_lot's `arc_lock` feature).
    pub fn read_arc(this: &Arc<Self>) -> lock_api::ArcRwLockReadGuard<RawRwLock, T>
    where
        T: Sized,
    {
        this.raw.lock_shared();
        lock_api::ArcRwLockReadGuard {
            lock: Arc::clone(this),
            _raw: std::marker::PhantomData,
        }
    }

    /// Exclusive access through an owned guard keeping the `Arc` alive.
    pub fn write_arc(this: &Arc<Self>) -> lock_api::ArcRwLockWriteGuard<RawRwLock, T>
    where
        T: Sized,
    {
        this.raw.lock_exclusive();
        lock_api::ArcRwLockWriteGuard {
            lock: Arc::clone(this),
            _raw: std::marker::PhantomData,
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// Borrowed shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: shared lock held for the guard's lifetime.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.raw.unlock_shared();
    }
}

/// Borrowed exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: exclusive lock held for the guard's lifetime.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: exclusive lock held for the guard's lifetime.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.raw.unlock_exclusive();
    }
}

/// Owned-guard types under the same path the real crate re-exports them.
pub mod lock_api {
    use super::{RawRwLock, RwLock};
    use std::marker::PhantomData;
    use std::ops::{Deref, DerefMut};
    use std::sync::Arc;

    /// Owned shared guard: keeps the `Arc<RwLock<T>>` alive while held.
    pub struct ArcRwLockReadGuard<R, T> {
        pub(crate) lock: Arc<RwLock<T>>,
        pub(crate) _raw: PhantomData<R>,
    }

    impl<T> Deref for ArcRwLockReadGuard<RawRwLock, T> {
        type Target = T;

        fn deref(&self) -> &T {
            // SAFETY: shared lock held for the guard's lifetime.
            unsafe { &*self.lock.data.get() }
        }
    }

    impl<R, T> Drop for ArcRwLockReadGuard<R, T> {
        fn drop(&mut self) {
            self.lock.raw.unlock_shared();
        }
    }

    /// Owned exclusive guard: keeps the `Arc<RwLock<T>>` alive while held.
    pub struct ArcRwLockWriteGuard<R, T> {
        pub(crate) lock: Arc<RwLock<T>>,
        pub(crate) _raw: PhantomData<R>,
    }

    impl<T> Deref for ArcRwLockWriteGuard<RawRwLock, T> {
        type Target = T;

        fn deref(&self) -> &T {
            // SAFETY: exclusive lock held for the guard's lifetime.
            unsafe { &*self.lock.data.get() }
        }
    }

    impl<T> DerefMut for ArcRwLockWriteGuard<RawRwLock, T> {
        fn deref_mut(&mut self) -> &mut T {
            // SAFETY: exclusive lock held for the guard's lifetime.
            unsafe { &mut *self.lock.data.get() }
        }
    }

    impl<R, T> Drop for ArcRwLockWriteGuard<R, T> {
        fn drop(&mut self) {
            self.lock.raw.unlock_exclusive();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar() {
        let m = Arc::new(Mutex::new(0u64));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let h = std::thread::spawn(move || {
            let mut g = m2.lock();
            while *g == 0 {
                cv2.wait(&mut g);
            }
            *g
        });
        std::thread::sleep(Duration::from_millis(10));
        *m.lock() = 7;
        cv.notify_all();
        assert_eq!(h.join().unwrap(), 7);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let rw = Arc::new(RwLock::new(vec![1, 2, 3]));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rw = Arc::clone(&rw);
                s.spawn(move || assert_eq!(rw.read().len(), 3));
            }
        });
        rw.write().push(4);
        assert_eq!(rw.read().len(), 4);
    }

    #[test]
    fn arc_guards() {
        let rw = Arc::new(RwLock::new(5u64));
        {
            let g = RwLock::read_arc(&rw);
            assert_eq!(*g, 5);
        }
        {
            let mut g = RwLock::write_arc(&rw);
            *g = 6;
        }
        assert_eq!(*rw.read(), 6);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }
}
