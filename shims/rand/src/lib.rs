//! Offline stand-in for the `rand` crate.
//!
//! The build container has no registry access, so the workspace wires this
//! local shim in via a path dependency (see the root `Cargo.toml`). It
//! implements exactly the surface the workspace uses — `StdRng`/`SmallRng`
//! seeded with [`SeedableRng::seed_from_u64`], integer [`Rng::gen_range`],
//! and [`seq::SliceRandom::shuffle`] — on top of a deterministic
//! xoshiro256** generator. Sequences differ from the real crate (workload
//! generators only need determinism, not bit-compatibility).

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** core shared by [`rngs::StdRng`] and [`rngs::SmallRng`].
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256 {
    fn seed_from_u64(mut state: u64) -> Self {
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        Self { s }
    }
}

/// Named generator types mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// The default generator (deterministic here, unlike upstream).
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self(Xoshiro256::seed_from_u64(state))
        }
    }

    /// A small fast generator; identical to [`StdRng`] in this shim.
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            Self(Xoshiro256::seed_from_u64(state))
        }
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Modulo draw: bias is negligible for the spans the
                // workload generators use (far below 2^32).
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive integer ranges).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::rngs::StdRng;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..3);
            assert!(w < 3);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<u64> = (0..50).collect();
        v.shuffle(&mut StdRng::seed_from_u64(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
