//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no registry access, so the workspace wires this
//! local shim in via a path dependency (see the root `Cargo.toml`). It
//! implements the subset the workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), [`Strategy`] with
//! `prop_map`, `any::<T>()`, integer-range and tuple strategies,
//! `prop::collection::vec`, [`Just`], [`prop_oneof!`], and the
//! `prop_assert*` macros. Inputs are drawn from a deterministic PRNG
//! seeded per test case; there is no shrinking — a failing case reports
//! its generated inputs via the plain `assert!` panic message.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Test-runner configuration (only `cases` is honored).
pub mod test_runner {
    /// How many random cases each `proptest!` test executes.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// The per-test deterministic random source.
    pub struct TestRng(pub(crate) super::StdRng);

    impl TestRng {
        /// An RNG whose stream is fully determined by `case`.
        pub fn deterministic(case: u64) -> Self {
            use super::SeedableRng;
            // Offset so case 0 does not collide with common user seeds.
            Self(super::StdRng::seed_from_u64(
                case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5_5A5A_1234_5678,
            ))
        }
    }

    impl super::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply draws a fresh value from the RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut test_runner::TestRng) -> Self::Value;

    /// A strategy producing `f(v)` for values `v` of `self`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut test_runner::TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut test_runner::TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_for_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut test_runner::TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut test_runner::TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_uint_range!(u8, u16, u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn new_value(&self, rng: &mut test_runner::TestRng) -> Self::Value {
        (self.0.new_value(rng), self.1.new_value(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn new_value(&self, rng: &mut test_runner::TestRng) -> Self::Value {
        (
            self.0.new_value(rng),
            self.1.new_value(rng),
            self.2.new_value(rng),
        )
    }
}

/// Uniform choice among same-typed strategies; built by [`prop_oneof!`].
pub struct OneOf<S>(pub Vec<S>);

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut test_runner::TestRng) -> Self::Value {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[i].new_value(rng)
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T` (e.g. `any::<u64>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{test_runner::TestRng, Rng, Strategy};

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// A `Vec` strategy: each case draws a length in `len`, then that many
    /// elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.elem.new_value(rng)).collect()
        }
    }
}

/// The items `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Module alias so `prop::collection::vec(...)` resolves as it does
    /// with the real crate's prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            for __case in 0..(__cfg.cases as u64) {
                let mut __rng = $crate::test_runner::TestRng::deterministic(__case);
                $(let $pat = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `assert!` under the name property tests use.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under the name property tests use.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under the name property tests use.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategy expressions of the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($strat),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..9, v in prop::collection::vec(0u64..5, 1..20)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn tuples_and_map(k in (0u64..10, 0u64..10).prop_map(|(a, b)| [a, b])) {
            prop_assert!(k[0] < 10 && k[1] < 10);
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(1u64), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&x));
        }
    }

    #[test]
    fn macro_generated_tests_run() {
        ranges_stay_in_bounds();
        tuples_and_map();
        oneof_and_just();
    }
}
