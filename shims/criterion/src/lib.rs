//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no registry access, so the workspace wires this
//! local shim in via a path dependency (see the root `Cargo.toml`). It
//! keeps the bench files compiling and producing useful numbers: the same
//! `Criterion`/`benchmark_group`/`bench_function`/`iter` call shapes, but
//! measurement is a simple warm-up pass followed by timed samples with a
//! mean-per-iteration report (optionally with element throughput) printed
//! to stdout. No statistics, no HTML reports, no baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver; mirrors the builder methods the workspace
/// benches call.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(900),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Untimed warm-up budget before sampling.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Total timed budget across samples.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_bench(self, None, &id.0, None, f);
        self
    }

    /// Runs any benchmarks whose name matches CLI filters (no-op shim:
    /// all benchmarks always run at registration time).
    pub fn final_summary(&self) {}
}

/// Throughput annotation used to report per-element rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`"name"` or `BenchmarkId::from_parameter(..)`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id from a function name and parameter.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        Self(format!("{name}/{param}"))
    }

    /// An id rendering just the parameter (used inside groups).
    pub fn from_parameter(param: impl Display) -> Self {
        Self(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_bench(self.criterion, Some(&self.name), &id.0, self.throughput, f);
        self
    }

    /// Ends the group (report already printed per bench).
    pub fn finish(self) {}
}

/// Passed to the closure of `bench_function`; `iter` times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` for the sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    c: &Criterion,
    group: Option<&str>,
    id: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };

    // Warm-up: single iterations until the warm-up budget is spent; also
    // yields a per-iteration estimate to size measurement samples.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    while warm_start.elapsed() < c.warm_up_time || warm_iters == 0 {
        f(&mut b);
        warm_iters += 1;
        if warm_iters >= 1000 {
            break;
        }
    }
    let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

    // Size each sample so all samples fit the measurement budget.
    let per_sample = c.measurement_time / c.sample_size as u32;
    let iters_per_sample = if per_iter.is_zero() {
        1000
    } else {
        (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..c.sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += b.iters;
    }

    let mean = if total_iters == 0 {
        Duration::ZERO
    } else {
        total / total_iters as u32
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if !mean.is_zero() => {
            format!("  {:.2} Melem/s", n as f64 / mean.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if !mean.is_zero() => {
            format!(
                "  {:.2} MiB/s",
                n as f64 / mean.as_secs_f64() / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("bench: {label:<56} {mean:>12.2?}/iter{rate}");
}

/// Declares the benchmark entry list; both the `name/config/targets` block
/// form and the positional form are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main()` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export matching `criterion::black_box` (older call sites).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("shim_smoke");
        group.throughput(Throughput::Elements(1));
        let mut count = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.finish();
        assert!(count > 0);
        c.bench_function(BenchmarkId::from_parameter("p=1"), |b| b.iter(|| 42));
    }
}
