//! Operation hints under the microscope (paper §3.2): how access locality
//! turns tree traversals into single-leaf probes.
//!
//! Run with `cargo run --release --example hint_locality`.

use concurrent_datalog_btree::specbtree::BTreeSet;
use std::time::Instant;

const N: u64 = 400_000;

fn main() {
    // Build a relation of (group, member) pairs.
    let tree: BTreeSet<2> = BTreeSet::new();
    for i in 0..N {
        tree.insert([i / 64, (i % 64) * 2]);
    }

    // Scenario 1 — the paper's example: after touching (7, 10), accesses
    // near it land in the same leaf and skip the traversal.
    let mut hints = tree.create_hints();
    assert!(tree.contains_hinted(&[7, 20], &mut hints)); // cold: traverses
    for nearby in [[7, 20], [7, 18], [7, 22]] {
        assert!(tree.contains_hinted(&nearby, &mut hints));
    }
    println!(
        "paper's (7,10)-then-(7,4) pattern: {} hit(s), {} miss(es) over 4 probes",
        hints.stats.contains_hits, hints.stats.contains_misses
    );

    // Scenario 2 — ordered queries (the §4.1 membership benchmark where
    // hints give up to 6x): probe every element in order, hinted vs not.
    let mut hints = tree.create_hints();
    let start = Instant::now();
    for i in 0..N {
        assert!(tree.contains_hinted(&[i / 64, (i % 64) * 2], &mut hints));
    }
    let hinted = start.elapsed().as_secs_f64();

    let start = Instant::now();
    for i in 0..N {
        assert!(tree.contains(&[i / 64, (i % 64) * 2]));
    }
    let unhinted = start.elapsed().as_secs_f64();

    println!(
        "ordered membership: hinted {:.0}ms vs unhinted {:.0}ms ({:.1}x), hit rate {:.0}%",
        hinted * 1e3,
        unhinted * 1e3,
        unhinted / hinted,
        hints.stats.hit_rate() * 100.0
    );

    // Scenario 3 — random probing: hints rarely apply and cost a covered
    // check, the trade-off Figure 3 quantifies.
    let mut hints = tree.create_hints();
    let mut x = 0x2545F4914F6CDD1Du64;
    let mut hits = 0u64;
    for _ in 0..N {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let probe = [(x >> 33) % (N / 64), ((x >> 10) % 64) * 2];
        hits += u64::from(tree.contains_hinted(&probe, &mut hints));
    }
    println!(
        "random membership: {} of {N} probes found, hint hit rate {:.0}%",
        hits,
        hints.stats.hit_rate() * 100.0
    );

    // Scenario 4 — hinted inserts inside covered ranges (clustered data).
    let mut hints = tree.create_hints();
    let start = Instant::now();
    for i in 0..N {
        tree.insert_hinted([i / 64, (i % 64) * 2 + 1], &mut hints);
    }
    let secs = start.elapsed().as_secs_f64();
    println!(
        "clustered inserts: {:.2}M inserts/s with {:.0}% hint hits",
        N as f64 / secs / 1e6,
        hints.stats.insert_hits as f64 / N as f64 * 100.0
    );
}
