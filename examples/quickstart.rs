//! Quickstart: the specialized B-tree as a concurrent relation store.
//!
//! Run with `cargo run --release --example quickstart`.

use concurrent_datalog_btree::specbtree::BTreeSet;

fn main() {
    // A binary relation: tuples are `[u64; 2]`, ordered lexicographically.
    let edges: BTreeSet<2> = BTreeSet::new();

    // Phase 1 (write-only): concurrent insertion. No external lock; the
    // tree's optimistic protocol synchronizes writers internally, and
    // per-thread hints shortcut repeated traversals.
    std::thread::scope(|s| {
        for worker in 0..4u64 {
            let edges = &edges;
            s.spawn(move || {
                let mut hints = edges.create_hints();
                // Each worker owns a slice of the key space and inserts it
                // in two clustered passes (evens, then odds) — the access
                // locality hints exploit (paper §3.2).
                for pass in 0..2u64 {
                    for i in 0..12_500u64 {
                        let src = worker * 25_000 + i * 2 + pass;
                        edges.insert_hinted([src / 100, src % 100], &mut hints);
                    }
                }
                println!(
                    "worker {worker}: hint hit rate {:.0}%",
                    hints.stats.hit_rate() * 100.0
                );
            });
        }
    });
    println!("inserted {} unique edges", edges.len());

    // Phase 2 (read-only): point lookups, prefix range queries and ordered
    // scans — the operations Datalog joins are made of.
    assert!(edges.contains(&[500, 42]));
    let out_of_500: Vec<[u64; 2]> = edges.prefix_range(&[500]).collect();
    println!("node 500 has {} outgoing edges", out_of_500.len());

    // Parallel scans partition the key space into balanced chunks.
    let chunks = edges.partition(4);
    let counts: Vec<usize> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|c| {
                let edges = &edges;
                let c = *c;
                s.spawn(move || edges.chunk_range(&c).count())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    println!("parallel scan chunk sizes: {counts:?}");
    assert_eq!(counts.iter().sum::<usize>(), edges.len());

    // Structural health check (debug/diagnostic API).
    let shape = edges.check_invariants().expect("invariants hold");
    println!(
        "tree: depth {}, {} nodes, fill grade {:.0}%",
        shape.depth,
        shape.nodes,
        shape.fill_grade(specbtree::DEFAULT_NODE_CAPACITY) * 100.0
    );
}
