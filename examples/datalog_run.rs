//! A miniature Soufflé-style command line: evaluate a Datalog program from
//! a file (or a built-in demo program) and print its output relations.
//!
//! ```text
//! cargo run --release --example datalog_run -- program.dl [threads] [--explain] [--profile]
//! cargo run --release --example datalog_run            # built-in demo
//! ```
//!
//! `--explain` prints the compiled evaluation strategy (strata and
//! semi-naive plan versions); `--profile` prints per-rule timings after
//! the run; `--facts DIR` loads `<relation>.facts` TSV files for every
//! `.input` relation; `--out DIR` writes `<relation>.csv` for every
//! `.output` relation (Soufflé conventions).

use concurrent_datalog_btree::datalog::{parse, Engine, StorageKind};

const DEMO: &str = r#"
    // Org-chart analytics over interned symbols.
    .decl manages(boss: symbol, report: symbol)
    .decl above(boss: symbol, report: symbol)
    .decl peer(a: symbol, b: symbol)
    .output above
    .output peer

    manages("ada", "grace").   manages("ada", "edsger").
    manages("grace", "barbara"). manages("grace", "ken").
    manages("edsger", "donald"). manages("donald", "leslie").

    above(b, r) :- manages(b, r).
    above(b, r) :- above(b, m), manages(m, r).
    peer(a, b)  :- manages(m, a), manages(m, b), a != b.
"#;

fn main() {
    let mut explain = false;
    let mut profile = false;
    let mut facts_dir: Option<String> = None;
    let mut out_dir: Option<String> = None;
    let mut positional = Vec::new();
    let mut pending: Option<&str> = None;
    for a in std::env::args().skip(1) {
        match (pending.take(), a.as_str()) {
            (Some("--facts"), v) => facts_dir = Some(v.to_string()),
            (Some("--out"), v) => out_dir = Some(v.to_string()),
            (None, "--explain") => explain = true,
            (None, "--profile") => profile = true,
            (None, "--facts") => pending = Some("--facts"),
            (None, "--out") => pending = Some("--out"),
            (None, other) => positional.push(other.to_string()),
            (Some(flag), _) => panic!("{flag} needs a value"),
        }
    }
    let mut args = positional.into_iter();
    let source = match args.next() {
        Some(path) => {
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
        }
        None => {
            println!("(no program given — running the built-in demo)\n{DEMO}");
            DEMO.to_string()
        }
    };
    let threads: usize = args
        .next()
        .map(|t| t.parse().expect("threads"))
        .unwrap_or(2);

    let program = match parse(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };

    let mut engine = match Engine::new(&program, StorageKind::SpecBTree, threads) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    if let Some(dir) = &facts_dir {
        match engine.load_input_facts(dir) {
            Ok(n) => eprintln!("[facts] loaded {n} tuples from {dir}"),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
    if explain {
        eprintln!("--- evaluation strategy\n{}", engine.explain());
    }
    engine.run().expect("evaluation");
    if let Some(dir) = &out_dir {
        engine.write_output_relations(dir).expect("write outputs");
        eprintln!("[out] wrote output relations to {dir}");
    }
    if profile {
        eprintln!("--- per-rule profile (hottest first)");
        for p in engine.profile() {
            eprintln!(
                "{:>9.3} ms  {:>4} eval(s)  {}",
                p.seconds * 1e3,
                p.evaluations,
                p.rule
            );
        }
    }

    for decl in program.decls.iter().filter(|d| d.is_output) {
        let rows = engine
            .relation_display(&decl.name)
            .expect("declared relation");
        println!("--- {} ({} tuples)", decl.name, rows.len());
        for row in rows.iter().take(50) {
            println!("{}", row.join("\t"));
        }
        if rows.len() > 50 {
            println!("... ({} more)", rows.len() - 50);
        }
    }
    let s = engine.stats();
    eprintln!(
        "[stats] {} iterations, {} inserts, {} membership tests, {} range queries, {:.0}% hint hits",
        s.iterations,
        s.inserts,
        s.membership_tests,
        s.lower_bound_calls + s.upper_bound_calls,
        s.hints.hit_rate() * 100.0
    );
}
