//! A field-sensitive Andersen-style points-to analysis over a synthetic
//! program — the workload family of the paper's §4.3 Doop experiment.
//!
//! Run with `cargo run --release --example pointsto_analysis`.

use concurrent_datalog_btree::datalog::{Engine, StorageKind};
use concurrent_datalog_btree::workloads::pointsto::{
    self, generate_facts, load_facts, PointsToConfig,
};
use std::time::Instant;

fn main() {
    let cfg = PointsToConfig::scaled(12);
    let facts = generate_facts(&cfg, 2024);
    println!(
        "synthetic program: {} vars, {} heap sites, {} fields, {} input facts",
        cfg.variables,
        cfg.heaps,
        cfg.fields,
        facts.len()
    );

    let mut engine =
        Engine::new(&pointsto::program(), StorageKind::SpecBTree, 4).expect("valid program");
    load_facts(&mut engine, &facts).expect("facts load");

    let start = Instant::now();
    engine.run().expect("fixpoint reached");
    let secs = start.elapsed().as_secs_f64();

    let vpt = engine.relation_len("vpt").expect("vpt");
    let hpt = engine.relation_len("hpt").expect("hpt");
    let stats = engine.stats();
    println!(
        "solved in {secs:.3}s ({} fixpoint iterations)",
        stats.iterations
    );
    println!("var-points-to:  {vpt} tuples");
    println!("heap-points-to: {hpt} tuples");
    println!(
        "operation mix: {} inserts, {} membership tests, {} range queries",
        stats.inserts,
        stats.membership_tests,
        stats.lower_bound_calls + stats.upper_bound_calls
    );
    println!(
        "operation hints: {} hits / {} misses ({:.0}%)",
        stats.hints.hits(),
        stats.hints.misses(),
        stats.hints.hit_rate() * 100.0
    );

    // Inspect: the variables with the largest points-to sets.
    let mut by_var = std::collections::HashMap::<u64, usize>::new();
    for t in engine.relation("vpt").expect("vpt") {
        *by_var.entry(t[0]).or_default() += 1;
    }
    let mut ranked: Vec<_> = by_var.into_iter().collect();
    ranked.sort_by_key(|&(v, n)| (std::cmp::Reverse(n), v));
    println!("most-pointing variables:");
    for (v, n) in ranked.into_iter().take(5) {
        println!("  v{v}: may point to {n} heap objects");
    }
}
