//! The paper's running example (§2): transitive closure of an edge
//! relation, evaluated by the parallel semi-naive engine over different
//! relation data structures.
//!
//! Run with `cargo run --release --example transitive_closure`.

use concurrent_datalog_btree::datalog::{parse, Engine, StorageKind};
use concurrent_datalog_btree::workloads::graphs;
use std::time::Instant;

fn main() {
    // The two rules from the paper:
    //   path(X, Y) :- edge(X, Y).
    //   path(X, Z) :- path(X, Y), edge(Y, Z).
    let program = parse(
        r#"
        .decl edge(x: number, y: number)
        .decl path(x: number, y: number)
        .input edge
        .output path
        path(x, y) :- edge(x, y).
        path(x, z) :- path(x, y), edge(y, z).
        "#,
    )
    .expect("program parses");

    // A layered DAG: wide closure, bounded depth.
    let edges = graphs::layered_dag(12, 60, 3, 7);
    let expected = graphs::reference_tc(&edges);
    println!(
        "graph: {} edges, closure: {} paths",
        edges.len(),
        expected.len()
    );

    for kind in StorageKind::ALL {
        for threads in [1usize, 4] {
            let mut engine = Engine::new(&program, kind, threads).expect("valid program");
            engine
                .add_facts("edge", edges.iter().map(|&(a, b)| vec![a, b]))
                .expect("facts load");
            let start = Instant::now();
            engine.run().expect("evaluation succeeds");
            let secs = start.elapsed().as_secs_f64();
            let paths = engine.relation_len("path").expect("path exists");
            assert_eq!(paths, expected.len(), "{} diverged", kind.label());
            println!(
                "{:<16} {threads} thread(s): {secs:.3}s, {} fixpoint iterations, hint rate {:.0}%",
                kind.label(),
                engine.stats().iterations,
                engine.stats().hints.hit_rate() * 100.0,
            );
        }
    }
}
