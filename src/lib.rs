//! # concurrent-datalog-btree
//!
//! A Rust reproduction of *"A Specialized B-tree for Concurrent Datalog
//! Evaluation"* (Jordan, Subotić, Zhao, Scholz; PPoPP 2019): the
//! optimistic-lock concurrent B-tree the Soufflé Datalog engine uses for
//! its relations, together with every substrate the paper's evaluation
//! needs — a parallel semi-naive Datalog engine, all baseline data
//! structures, workload generators, and a benchmark harness reproducing
//! each figure and table.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`optlock`] — the optimistic read-write lock (extended seqlock, §3.1);
//! * [`specbtree`] — the specialized concurrent B-tree with operation
//!   hints (§3), plus its sequential twin;
//! * [`baselines`] — the comparator data structures of Table 1 and §4.4;
//! * [`datalog`] — the parallel Datalog engine of §4.3;
//! * [`workloads`] — deterministic experiment inputs.
//!
//! ## Quickstart
//!
//! ```
//! use concurrent_datalog_btree::specbtree::BTreeSet;
//!
//! let relation: BTreeSet<2> = BTreeSet::new();
//! std::thread::scope(|s| {
//!     for t in 0..4u64 {
//!         let relation = &relation;
//!         s.spawn(move || {
//!             let mut hints = relation.create_hints();
//!             for i in 0..1000 {
//!                 relation.insert_hinted([i, t], &mut hints);
//!             }
//!         });
//!     }
//! });
//! assert_eq!(relation.len(), 4000);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use baselines;
pub use datalog;
pub use optlock;
pub use specbtree;
pub use workloads;
